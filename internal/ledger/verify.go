package ledger

// verify.go re-derives the whole ledger structure from bytes alone. The
// threat-model discipline matches filing.Activate (PR 7): ledger bytes
// come from an untrusted volume, so every malformation — truncation, bad
// magic, counts that overrun the remaining bytes, a broken hash chain —
// is a typed error naming the first bad segment, never a panic, and every
// count is clamped against the remaining bytes BEFORE any allocation is
// sized from it.

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/trace"
)

// ErrCorrupt is the sentinel all verification failures unwrap to.
var ErrCorrupt = errors.New("ledger: corrupt")

// CorruptError reports the first bad segment and what is wrong with it.
type CorruptError struct {
	Segment int // index of the first segment that failed to verify
	Detail  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ledger: segment %d: %s", e.Segment, e.Detail)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

func corruptf(seg int, format string, args ...any) error {
	return &CorruptError{Segment: seg, Detail: fmt.Sprintf(format, args...)}
}

// SegmentInfo describes one verified segment.
type SegmentInfo struct {
	FirstSeq uint64
	LastSeq  uint64
	Count    int
	Hash     [HashBytes]byte
	Header   []byte // raw header bytes (for event proofs)
}

// Replay is everything Verify reconstructs from a well-formed ledger: the
// full event stream, the per-kind accepted and dropped counters, the
// segment chain, and the Merkle root committing it all.
type Replay struct {
	Events   []trace.Event
	Counts   []uint64 // accepted per kind, summed over segment deltas
	Dropped  []uint64 // dropped per kind, summed over segment deltas
	Segments []SegmentInfo
	Root     [HashBytes]byte

	leaves [][HashBytes]byte // segment hashes, for proofs
}

// DroppedTotal sums the per-kind drop counters.
func (r *Replay) DroppedTotal() uint64 {
	var n uint64
	for _, d := range r.Dropped {
		n += d
	}
	return n
}

// Verify parses and checks a complete ledger: per segment it re-derives
// the body Merkle root, cross-checks the header's per-kind count deltas
// against the body, recomputes the segment hash, and checks the previous-
// segment chain link; across segments it enforces strictly increasing
// sequence numbers. On success the returned Replay holds the reconstructed
// stream and counters; on any malformation the error is a *CorruptError
// unwrapping to ErrCorrupt.
func Verify(data []byte) (*Replay, error) {
	rep := &Replay{}
	var prev [HashBytes]byte
	var lastSeq uint64
	off := 0
	for seg := 0; off < len(data); seg++ {
		rest := data[off:]
		if len(rest) < headerFixedBytes {
			return nil, corruptf(seg, "truncated header: %d bytes remain, need %d", len(rest), headerFixedBytes)
		}
		if m := binary.LittleEndian.Uint32(rest[0:4]); m != Magic {
			return nil, corruptf(seg, "bad magic %#x", m)
		}
		if v := binary.LittleEndian.Uint32(rest[4:8]); v != Version {
			return nil, corruptf(seg, "unsupported version %d", v)
		}
		if idx := binary.LittleEndian.Uint32(rest[8:12]); idx != uint32(seg) {
			return nil, corruptf(seg, "segment index %d out of order", idx)
		}
		kinds := binary.LittleEndian.Uint32(rest[12:16])
		if kinds == 0 || kinds > MaxKinds {
			return nil, corruptf(seg, "kind count %d outside [1,%d]", kinds, MaxKinds)
		}
		count := binary.LittleEndian.Uint32(rest[16:20])
		if count == 0 {
			return nil, corruptf(seg, "empty segment")
		}
		// Clamp the declared sizes against the remaining bytes before any
		// allocation is derived from them; the arithmetic is done in
		// uint64 so a hostile count cannot overflow the comparison.
		need := uint64(headerLen(int(kinds))) + uint64(count)*RecordBytes + HashBytes
		if uint64(len(rest)) < need {
			return nil, corruptf(seg, "declares %d bytes but only %d remain", need, len(rest))
		}
		hdr := rest[:headerLen(int(kinds))]
		firstSeq := binary.LittleEndian.Uint64(hdr[20:28])
		segLastSeq := binary.LittleEndian.Uint64(hdr[28:36])
		var prevHash, bodyRoot [HashBytes]byte
		copy(prevHash[:], hdr[36:36+HashBytes])
		copy(bodyRoot[:], hdr[36+HashBytes:36+2*HashBytes])
		if prevHash != prev {
			return nil, corruptf(seg, "previous-segment hash mismatch: chain broken")
		}

		deltaOff := headerFixedBytes
		countDelta := make([]uint64, kinds)
		for k := range countDelta {
			countDelta[k] = binary.LittleEndian.Uint64(hdr[deltaOff:])
			deltaOff += 8
		}
		dropDelta := make([]uint64, kinds)
		for k := range dropDelta {
			dropDelta[k] = binary.LittleEndian.Uint64(hdr[deltaOff:])
			deltaOff += 8
		}

		body := rest[len(hdr) : len(hdr)+int(count)*RecordBytes]
		bodyCounts := make([]uint64, kinds)
		leaves := make([][HashBytes]byte, count)
		for i := 0; i < int(count); i++ {
			rec := body[i*RecordBytes : (i+1)*RecordBytes]
			ev := decodeRecord(rec)
			if uint32(ev.Kind) >= kinds {
				return nil, corruptf(seg, "record %d: kind %d outside header's %d kinds", i, ev.Kind, kinds)
			}
			if ev.Seq <= lastSeq {
				return nil, corruptf(seg, "record %d: sequence %d not increasing (last %d)", i, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			bodyCounts[ev.Kind]++
			leaves[i] = leafHash(rec)
			rep.Events = append(rep.Events, ev)
		}
		if rep.Events[len(rep.Events)-int(count)].Seq != firstSeq {
			return nil, corruptf(seg, "header firstSeq %d does not match body", firstSeq)
		}
		if lastSeq != segLastSeq {
			return nil, corruptf(seg, "header lastSeq %d does not match body %d", segLastSeq, lastSeq)
		}
		for k := range bodyCounts {
			if bodyCounts[k] != countDelta[k] {
				return nil, corruptf(seg, "kind %v count delta %d but body holds %d",
					trace.Kind(k), countDelta[k], bodyCounts[k])
			}
		}
		if got := merkleRoot(leaves); got != bodyRoot {
			return nil, corruptf(seg, "body Merkle root mismatch")
		}
		segHash := sha256.Sum256(hdr)
		var footer [HashBytes]byte
		copy(footer[:], rest[len(hdr)+len(body):])
		if footer != segHash {
			return nil, corruptf(seg, "segment hash mismatch")
		}

		grow := func(dst []uint64) []uint64 {
			for len(dst) < int(kinds) {
				dst = append(dst, 0)
			}
			return dst
		}
		rep.Counts = grow(rep.Counts)
		rep.Dropped = grow(rep.Dropped)
		for k := range countDelta {
			rep.Counts[k] += countDelta[k]
			rep.Dropped[k] += dropDelta[k]
		}

		rep.Segments = append(rep.Segments, SegmentInfo{
			FirstSeq: firstSeq,
			LastSeq:  segLastSeq,
			Count:    int(count),
			Hash:     segHash,
			Header:   append([]byte(nil), hdr...),
		})
		rep.leaves = append(rep.leaves, segHash)
		prev = segHash
		off += int(need)
	}
	rep.Root = merkleRoot(rep.leaves)
	return rep, nil
}

// ProveEvent builds the inclusion proof for the i'th replayed event
// (global position in Events). The proof verifies against rep.Root via
// VerifyEvent.
func (r *Replay) ProveEvent(i int) (*EventProof, error) {
	if i < 0 || i >= len(r.Events) {
		return nil, fmt.Errorf("ledger: event %d out of range (have %d)", i, len(r.Events))
	}
	seg, idx := 0, i
	for idx >= r.Segments[seg].Count {
		idx -= r.Segments[seg].Count
		seg++
	}
	info := r.Segments[seg]
	leaves := make([][HashBytes]byte, info.Count)
	var rec []byte
	base := i - idx
	for j := 0; j < info.Count; j++ {
		rec = appendRecord(rec[:0], r.Events[base+j])
		leaves[j] = leafHash(rec)
	}
	return &EventProof{
		Segment:      seg,
		Segments:     len(r.Segments),
		Index:        idx,
		SegmentCount: info.Count,
		Header:       info.Header,
		BodyPath:     inclusionPath(leaves, idx),
		LedgerPath:   inclusionPath(r.leaves, seg),
	}, nil
}

// RootAt is the Merkle root over the first n segments — the commitment a
// verifier would have held when the ledger was n segments long.
func (r *Replay) RootAt(n int) [HashBytes]byte {
	return merkleRoot(r.leaves[:n])
}

// ConsistencyProof proves the first n segments are a prefix of the full
// ledger; verify with VerifyConsistency(RootAt(n), Root, n, len(Segments),
// proof).
func (r *Replay) ConsistencyProof(n int) [][HashBytes]byte {
	return consistencyPath(r.leaves, n)
}
