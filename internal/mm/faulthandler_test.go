package mm_test

// Table-driven coverage of the §7.3 segment-fault service
// (FaultHandlerBody): every fault code through the handler's dispatch
// (segment faults serviced, everything else forwarded or terminated),
// the organic swap-out/restore round trip, a double fault through the
// same handler, and fault delivery to a full or missing fault port.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gdp"
	"repro/internal/isa"
	"repro/internal/mm"
	"repro/internal/obj"
	"repro/internal/port"
	"repro/internal/process"
)

func bootSwapping(t *testing.T) *core.IMAX {
	t.Helper()
	im, err := core.Boot(core.Config{
		Processors:  2,
		MemoryBytes: 8 << 20,
		Swapping:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func spawnProg(t *testing.T, im *core.IMAX, prog []isa.Instr, faultPort obj.AD, aargs [4]obj.AD) obj.AD {
	t.Helper()
	code, f := im.Domains.CreateCode(im.Heap, prog)
	if f != nil {
		t.Fatal(f)
	}
	dom, f := im.Domains.Create(im.Heap, code, []uint32{0})
	if f != nil {
		t.Fatal(f)
	}
	p, f := im.Spawn(dom, gdp.SpawnSpec{Priority: 5, FaultPort: faultPort, AArgs: aargs})
	if f != nil {
		t.Fatal(f)
	}
	return p
}

// TestFaultHandlerEveryCode drives one faulting process per fault code
// through a handler configured with an overflow port: segment faults are
// the handler's own business (covered separately below); every other code
// must be forwarded to the overflow port with the code as the message
// key, leaving the victim faulted for a higher-level service.
func TestFaultHandlerEveryCode(t *testing.T) {
	codes := []obj.FaultCode{
		obj.FaultInvalidAD,
		obj.FaultRights,
		obj.FaultLevel,
		obj.FaultType,
		obj.FaultBounds,
		obj.FaultNoMemory,
		obj.FaultOddity,
		obj.FaultTimeout,
		obj.FaultStorageClaim,
	}
	im := bootSwapping(t)
	hnd, f := im.Ports.Create(im.Heap, 16, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	ovf, f := im.Ports.Create(im.Heap, 16, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	if _, f := im.SpawnNative(mm.FaultHandlerBody(im.Swapper, hnd, ovf), gdp.SpawnSpec{
		Priority: 14,
	}); f != nil {
		t.Fatal(f)
	}
	want := make(map[obj.Index]obj.FaultCode)
	var victims []obj.AD
	for _, code := range codes {
		p := spawnProg(t, im, []isa.Instr{
			isa.FaultInject(uint32(code)),
			isa.Halt(),
		}, hnd, [4]obj.AD{})
		want[p.Index] = code
		victims = append(victims, p)
	}
	done := func() bool {
		n, f := im.Ports.Count(ovf)
		return f == nil && n == len(codes)
	}
	if _, f := im.RunUntil(done, 50_000_000); f != nil {
		n, _ := im.Ports.Count(ovf)
		t.Fatalf("only %d/%d victims reached the overflow port: %v", n, len(codes), f)
	}
	for i, p := range victims {
		st, f := im.Procs.StateOf(p)
		if f != nil {
			t.Fatalf("victim %d: %v", i, f)
		}
		if st != process.StateFaulted {
			t.Errorf("victim %d (%v): state %v, want faulted", i, codes[i], st)
		}
		got, f := im.Procs.FaultCode(p)
		if f != nil {
			t.Fatal(f)
		}
		if got != codes[i] {
			t.Errorf("victim %d: recorded code %v, want %v", i, got, codes[i])
		}
	}
	st, f := im.Ports.Inspect(ovf)
	if f != nil {
		t.Fatal(f)
	}
	for _, s := range st.Slots {
		if !s.Occupied {
			continue
		}
		code, ok := want[s.Msg.Index]
		if !ok {
			t.Errorf("overflow port holds unexpected object %d", s.Msg.Index)
			continue
		}
		if obj.FaultCode(s.Key) != code {
			t.Errorf("victim %d forwarded with key %v, want %v", s.Msg.Index, obj.FaultCode(s.Key), code)
		}
	}
}

// evictEverything swaps out every swappable object, so any touch the
// workload makes afterwards raises an organic segment fault.
func evictEverything(t *testing.T, im *core.IMAX) {
	t.Helper()
	for {
		_, ok, f := im.Swapper.EvictVictim()
		if f != nil {
			t.Fatal(f)
		}
		if !ok {
			return
		}
	}
}

// TestFaultHandlerSegmentRoundTrip is the service working as designed:
// evict everything, let the worker fault on its swapped-out operands (and
// its own code), and require the handler to restore residency and requeue
// it until it completes with the right answer.
func TestFaultHandlerSegmentRoundTrip(t *testing.T) {
	im := bootSwapping(t)
	src, f := im.SROs.Create(im.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		t.Fatal(f)
	}
	if f := im.Table.WriteDWord(src, 0, 777); f != nil {
		t.Fatal(f)
	}
	dst, f := im.SROs.Create(im.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		t.Fatal(f)
	}
	p := spawnProg(t, im, []isa.Instr{
		isa.Load(0, 1, 0),
		isa.Store(0, 2, 0),
		isa.Halt(),
	}, im.SegFaultPort, [4]obj.AD{1: src, 2: dst})
	evictEverything(t, im)
	done := func() bool {
		st, f := im.Procs.StateOf(p)
		return f == nil && st == process.StateTerminated
	}
	if _, f := im.RunUntil(done, 50_000_000); f != nil {
		st, _ := im.Procs.StateOf(p)
		t.Fatalf("worker never completed (state %v): %v", st, f)
	}
	got, f := im.Table.ReadDWord(dst, 0)
	if f != nil {
		t.Fatal(f)
	}
	if got != 777 {
		t.Fatalf("result %d after segment-fault service, want 777", got)
	}
	if im.Swapper.SwapIns == 0 {
		t.Fatal("no swap-ins recorded; the test never exercised the fault path")
	}
}

// TestFaultHandlerDoubleFault faults the same process twice through the
// same handler: first an organic segment fault (serviced, requeued), then
// an injected bounds fault. The second fault must overwrite the recorded
// code and — with no overflow port on the core wiring — terminate the
// victim rather than wedge the handler.
func TestFaultHandlerDoubleFault(t *testing.T) {
	im := bootSwapping(t)
	src, f := im.SROs.Create(im.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		t.Fatal(f)
	}
	p := spawnProg(t, im, []isa.Instr{
		isa.Load(0, 1, 0), // segment fault once src is evicted
		isa.FaultInject(uint32(obj.FaultBounds)),
		isa.Halt(),
	}, im.SegFaultPort, [4]obj.AD{1: src})
	evictEverything(t, im)
	done := func() bool {
		st, f := im.Procs.StateOf(p)
		return f == nil && st == process.StateTerminated
	}
	if _, f := im.RunUntil(done, 50_000_000); f != nil {
		st, _ := im.Procs.StateOf(p)
		t.Fatalf("victim never reached termination (state %v): %v", st, f)
	}
	code, f := im.Procs.FaultCode(p)
	if f != nil {
		t.Fatal(f)
	}
	if code != obj.FaultBounds {
		t.Fatalf("recorded code %v, want the second fault's %v", code, obj.FaultBounds)
	}
	if st := im.Stats(); st.FaultsSent < 2 {
		t.Fatalf("only %d fault deliveries; the double fault never happened", st.FaultsSent)
	}
	if im.Swapper.SwapIns == 0 {
		t.Fatal("no swap-ins; the first (segment) fault never happened")
	}
}

// TestFaultDeliveryFullAndMissingPort covers the delivery arms below the
// handler: a victim whose fault port is full, and one with no fault port
// at all, are both terminated with the fault code on record.
func TestFaultDeliveryFullAndMissingPort(t *testing.T) {
	cases := []struct {
		name string
		port func(t *testing.T, im *core.IMAX) obj.AD
	}{
		{"full", func(t *testing.T, im *core.IMAX) obj.AD {
			fp, f := im.Ports.Create(im.Heap, 1, port.FIFO)
			if f != nil {
				t.Fatal(f)
			}
			filler, f := im.SROs.Create(im.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
			if f != nil {
				t.Fatal(f)
			}
			if ok, f := im.SendMessage(fp, filler, 0); f != nil || !ok {
				t.Fatalf("fill fault port: ok=%v %v", ok, f)
			}
			return fp
		}},
		{"missing", func(t *testing.T, im *core.IMAX) obj.AD { return obj.NilAD }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			im, err := core.Boot(core.Config{Processors: 1, MemoryBytes: 4 << 20})
			if err != nil {
				t.Fatal(err)
			}
			fp := tc.port(t, im)
			p := spawnProg(t, im, []isa.Instr{
				isa.FaultInject(uint32(obj.FaultOddity)),
				isa.Halt(),
			}, fp, [4]obj.AD{})
			done := func() bool {
				st, f := im.Procs.StateOf(p)
				return f == nil && st == process.StateTerminated
			}
			if _, f := im.RunUntil(done, 10_000_000); f != nil {
				st, _ := im.Procs.StateOf(p)
				t.Fatalf("victim not terminated (state %v): %v", st, f)
			}
			code, f := im.Procs.FaultCode(p)
			if f != nil {
				t.Fatal(f)
			}
			if code != obj.FaultOddity {
				t.Fatalf("recorded code %v, want %v", code, obj.FaultOddity)
			}
			if fp.Valid() {
				if n, _ := im.Ports.Count(fp); n != 1 {
					t.Fatalf("fault port count %d, want just the filler", n)
				}
				st, f := im.Ports.Inspect(fp)
				if f != nil {
					t.Fatal(f)
				}
				for _, s := range st.Slots {
					if s.Occupied && s.Msg.Index == p.Index {
						t.Fatal("terminated victim also landed on the full fault port")
					}
				}
			}
		})
	}
}
