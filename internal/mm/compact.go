package mm

import (
	"repro/internal/mem"
	"repro/internal/obj"
	"repro/internal/vtime"
)

// Compaction. First-fit allocation fragments physical memory; the 432's
// object descriptors made compaction straightforward because every
// segment has exactly one descriptor holding its physical address — move
// the bytes, update the descriptor, and every capability in the system
// still works (capabilities name the descriptor, not the address). This
// is the same indirection the swapping manager exploits, and the reason
// the paper can say a segment "might be being moved and therefore be
// inaccessible for some period of time" (§7.3) without breaking anyone.
//
// Compact is provided on the swapping manager (it owns segment motion);
// the non-swapping release omits it, as release 1 of iMAX omitted
// everything beyond basic allocation (§9).

// Compact relocates resident objects toward low memory until no further
// move helps, reducing external fragmentation. It reports the number of
// segments moved and the simulated cycles charged. Pinned objects move
// too — pinning protects from reclamation and swapping, not from motion,
// which is invisible through the descriptor indirection.
func (m *Swapping) Compact() (moved int, spent vtime.Cycles, fault *obj.Fault) {
	// Repeatedly pick the live extent with the highest base that fits
	// into a lower free slot. Simple and quadratic-ish, but bounded by
	// the live object count and deterministic.
	for {
		progress := false
		for i := 1; i < m.Table.Len(); i++ {
			idx := obj.Index(i)
			d := m.Table.DescriptorAt(idx)
			if d == nil || d.SwappedOut {
				continue
			}
			// Try moving each part to a strictly lower address.
			if d.DataLen > 0 {
				if e, ok := m.tryMoveLower(d.Data); ok {
					d.Data = e
					moved++
					spent += vtime.CostSwapIn/4 + vtime.Cycles(d.DataLen/64)
					progress = true
				}
			}
			if d.AccessSlots > 0 {
				if e, ok := m.tryMoveLower(d.Access); ok {
					d.Access = e
					moved++
					spent += vtime.CostSwapIn/4 + vtime.Cycles(d.AccessSlots*obj.ADSlotSize/64)
					progress = true
				}
			}
		}
		if !progress {
			break
		}
	}
	if moved > 0 {
		// Extents were rewritten behind the table's back (directly
		// through DescriptorAt); any execution-cache window over a moved
		// segment now points at freed bytes.
		m.Table.InvalidateCaches()
	}
	m.Compactions++
	m.CompactMoves += uint64(moved)
	m.CompactCycles += spent
	return moved, spent, nil
}

// tryMoveLower relocates extent e if a strictly lower-addressed free
// region can hold it; it reports the new extent.
func (m *Swapping) tryMoveLower(e mem.Extent) (mem.Extent, bool) {
	mem := m.Table.Memory()
	dst, err := mem.Alloc(e.Len)
	if err != nil {
		return e, false
	}
	if dst.Base >= e.Base {
		// No improvement; undo.
		_ = mem.Free(dst)
		return e, false
	}
	// Copy the contents and release the old extent.
	p, err := mem.ReadBytes(e, 0, e.Len)
	if err != nil {
		_ = mem.Free(dst)
		return e, false
	}
	if err := mem.WriteBytes(dst, 0, p); err != nil {
		_ = mem.Free(dst)
		return e, false
	}
	if err := mem.Free(e); err != nil {
		// The old extent is damaged; keep the copy anyway — the
		// descriptor must point at valid storage.
		return dst, true
	}
	return dst, true
}
