// Package mm is iMAX's memory management layer (§6.2 of the paper),
// demonstrating configurability by alternate implementation: "Virtually
// all processes make use of memory management facilities via a standard
// interface ... A single Ada specification defines the common interface
// ... Both a swapping and a non-swapping implementation meet this
// specification but are optimized internally to the level of function
// they provide."
//
// Allocator is that single specification. NonSwapping is the first-
// release implementation (§9); Swapping adds a backing store, victim
// eviction and a segment-fault service so that virtual space can exceed
// physical memory. Most applications cannot tell which one the system was
// configured with — the E9 experiment runs the same workload on both.
package mm

import (
	"repro/internal/obj"
	"repro/internal/sro"
	"repro/internal/vtime"
)

// Allocator is the common memory-management specification: stack
// allocation is implicit in contexts (internal/process), so the interface
// covers the global-heap and local-heap mechanisms of §5.
type Allocator interface {
	// Name identifies the configured implementation.
	Name() string
	// NewHeap creates a global (level-0) heap with the given claim.
	NewHeap(claim uint32) (obj.AD, *obj.Fault)
	// NewLocalHeap creates a local heap producing objects at the given
	// level.
	NewLocalHeap(parent obj.AD, level obj.Level, claim uint32) (obj.AD, *obj.Fault)
	// Allocate creates an object from the heap.
	Allocate(heap obj.AD, spec obj.CreateSpec) (obj.AD, *obj.Fault)
	// DestroyHeap bulk-reclaims a local heap.
	DestroyHeap(heap obj.AD) (int, *obj.Fault)
}

// NonSwapping is the first-release implementation: a thin, fast layer
// over the SRO mechanism. Allocation fails outright when physical memory
// or the storage claim is exhausted.
type NonSwapping struct {
	SROs *sro.Manager
}

// NewNonSwapping returns the non-swapping implementation.
func NewNonSwapping(s *sro.Manager) *NonSwapping { return &NonSwapping{SROs: s} }

// Name implements Allocator.
func (m *NonSwapping) Name() string { return "non-swapping" }

// NewHeap implements Allocator.
func (m *NonSwapping) NewHeap(claim uint32) (obj.AD, *obj.Fault) {
	return m.SROs.NewGlobalHeap(claim)
}

// NewLocalHeap implements Allocator.
func (m *NonSwapping) NewLocalHeap(parent obj.AD, level obj.Level, claim uint32) (obj.AD, *obj.Fault) {
	return m.SROs.NewLocalHeap(parent, level, claim)
}

// Allocate implements Allocator.
func (m *NonSwapping) Allocate(heap obj.AD, spec obj.CreateSpec) (obj.AD, *obj.Fault) {
	return m.SROs.Create(heap, spec)
}

// DestroyHeap implements Allocator.
func (m *NonSwapping) DestroyHeap(heap obj.AD) (int, *obj.Fault) {
	return m.SROs.DestroyHeap(heap)
}

var _ Allocator = (*NonSwapping)(nil)
var _ Allocator = (*Swapping)(nil)

// BackingStore simulates the swapping device: a token-addressed byte
// store with transfer accounting. (The paper's testbed used disk; the
// substitution preserves the code path and the cost model.)
type BackingStore struct {
	images map[uint64]storedImage
	next   uint64

	// Stats.
	WritesBytes uint64
	ReadsBytes  uint64
	Ops         uint64
}

type storedImage struct {
	data   []byte
	access []byte
}

// NewBackingStore returns an empty backing store.
func NewBackingStore() *BackingStore {
	return &BackingStore{images: make(map[uint64]storedImage), next: 1}
}

// put stores an object image and returns its token.
func (b *BackingStore) put(data, access []byte) uint64 {
	tok := b.next
	b.next++
	b.images[tok] = storedImage{data: data, access: access}
	b.WritesBytes += uint64(len(data) + len(access))
	b.Ops++
	return tok
}

// get retrieves and removes an image.
func (b *BackingStore) get(tok uint64) (storedImage, bool) {
	img, ok := b.images[tok]
	if ok {
		delete(b.images, tok)
		b.ReadsBytes += uint64(len(img.data) + len(img.access))
		b.Ops++
	}
	return img, ok
}

// Resident reports the number of images currently swapped out.
func (b *BackingStore) Resident() int { return len(b.images) }

// Swapping is the second-release implementation: the same interface, but
// allocation pressure evicts victim objects to the backing store, and
// segment faults bring them back (§6.2, §7.3). It provides the additional
// management interface (Stats, EnsureResident) that "can be used by
// resource managers or others that need information specific to the
// implementation".
type Swapping struct {
	Table *obj.Table
	SROs  *sro.Manager
	Store *BackingStore

	clockHand obj.Index

	// Stats.
	SwapOuts   uint64
	SwapIns    uint64
	SwapCycles vtime.Cycles
	// Evictions counts pressure-driven victim selections (EvictVictim
	// calls that found a victim), whether triggered by a failed
	// allocation or forced externally.
	Evictions uint64
	// FaultsServiced counts segment faults restored to residency by the
	// fault-handler service (FaultHandlerBody).
	FaultsServiced uint64
	// Compactions and CompactMoves count Compact passes and the segment
	// parts they relocated; CompactCycles is their charged virtual time.
	Compactions   uint64
	CompactMoves  uint64
	CompactCycles vtime.Cycles
}

// NewSwapping returns the swapping implementation.
func NewSwapping(t *obj.Table, s *sro.Manager) *Swapping {
	return &Swapping{Table: t, SROs: s, Store: NewBackingStore()}
}

// Name implements Allocator.
func (m *Swapping) Name() string { return "swapping" }

// NewHeap implements Allocator.
func (m *Swapping) NewHeap(claim uint32) (obj.AD, *obj.Fault) {
	return m.SROs.NewGlobalHeap(claim)
}

// NewLocalHeap implements Allocator.
func (m *Swapping) NewLocalHeap(parent obj.AD, level obj.Level, claim uint32) (obj.AD, *obj.Fault) {
	return m.SROs.NewLocalHeap(parent, level, claim)
}

// DestroyHeap implements Allocator. Swapped-out members release their
// backing images.
func (m *Swapping) DestroyHeap(heap obj.AD) (int, *obj.Fault) {
	m.Table.AliveBySRO(heap.Index, func(i obj.Index) {
		if d := m.Table.DescriptorAt(i); d != nil && d.SwappedOut {
			_, _ = m.Store.get(d.SwapToken)
		}
	})
	return m.SROs.DestroyHeap(heap)
}

// Allocate implements Allocator: on physical exhaustion it evicts victims
// until the allocation fits, so virtual allocation can exceed physical
// memory up to the backing store's capacity.
func (m *Swapping) Allocate(heap obj.AD, spec obj.CreateSpec) (obj.AD, *obj.Fault) {
	for {
		ad, f := m.SROs.Create(heap, spec)
		if f == nil {
			return ad, nil
		}
		if f.Code != obj.FaultNoMemory {
			return obj.NilAD, f
		}
		if evicted, ef := m.evictOne(); ef != nil {
			return obj.NilAD, ef
		} else if !evicted {
			return obj.NilAD, f // nothing left to evict
		}
	}
}

// swappable reports whether the object at idx may be evicted. Hardware
// anchor types stay resident: a swapped-out port or process would deadlock
// the machinery that must run to bring it back.
func (m *Swapping) swappable(idx obj.Index) bool {
	d := m.Table.DescriptorAt(idx)
	if d == nil || d.SwappedOut || d.Pinned {
		return false
	}
	switch d.Type {
	case obj.TypeGeneric, obj.TypeInstruction, obj.TypeTDO:
		return d.DataLen > 0 || d.AccessSlots > 0
	}
	return false
}

// evictOne selects a victim by clock sweep and swaps it out. It reports
// false when no victim exists.
func (m *Swapping) evictOne() (bool, *obj.Fault) {
	_, ok, f := m.EvictVictim()
	return ok, f
}

// swapOut writes the object's image to the backing store and releases its
// physical memory.
func (m *Swapping) swapOut(idx obj.Index) *obj.Fault {
	d := m.Table.DescriptorAt(idx)
	if d == nil {
		return obj.Faultf(obj.FaultInvalidAD, obj.AD{Index: idx}, "no such object")
	}
	mem := m.Table.Memory()
	var data, access []byte
	var err error
	if d.DataLen > 0 {
		if data, err = mem.ReadBytes(d.Data, 0, d.DataLen); err != nil {
			return obj.Faultf(obj.FaultOddity, obj.AD{Index: idx}, "%v", err)
		}
	}
	if d.AccessSlots > 0 {
		if access, err = mem.ReadBytes(d.Access, 0, d.AccessSlots*obj.ADSlotSize); err != nil {
			return obj.Faultf(obj.FaultOddity, obj.AD{Index: idx}, "%v", err)
		}
	}
	tok := m.Store.put(data, access)
	if f := m.Table.SwapOut(idx, tok); f != nil {
		_, _ = m.Store.get(tok)
		return f
	}
	m.SwapOuts++
	m.SwapCycles += transferCost(len(data) + len(access))
	return nil
}

// EvictVictim swaps out the next clock-sweep victim on demand and reports
// its index, without waiting for allocation pressure. Resource managers use
// it to shed memory ahead of need, and the fault-injection harness uses it
// to force a swap-out between two instructions of a running process. ok is
// false when nothing is swappable.
func (m *Swapping) EvictVictim() (victim obj.Index, ok bool, f *obj.Fault) {
	n := obj.Index(m.Table.Len())
	if n <= 1 {
		return obj.NilIndex, false, nil
	}
	hand := m.clockHand
	for i := obj.Index(0); i < n; i++ {
		hand++
		if hand >= n {
			hand = 1
		}
		if m.swappable(hand) {
			m.clockHand = hand
			m.Evictions++
			return hand, true, m.swapOut(hand)
		}
	}
	return obj.NilIndex, false, nil
}

// EnsureResident brings a swapped-out object back into physical memory,
// evicting other victims if necessary. It is idempotent: a resident
// object returns immediately. This is the segment-fault service of §7.3.
func (m *Swapping) EnsureResident(idx obj.Index) *obj.Fault {
	d := m.Table.DescriptorAt(idx)
	if d == nil {
		return obj.Faultf(obj.FaultInvalidAD, obj.AD{Index: idx}, "no such object")
	}
	if !d.SwappedOut {
		return nil
	}
	tok := d.SwapToken
	for {
		data, access, f := m.Table.SwapIn(idx)
		if f == nil {
			img, ok := m.Store.get(tok)
			if !ok {
				return obj.Faultf(obj.FaultOddity, obj.AD{Index: idx},
					"backing image %d missing", tok)
			}
			mem := m.Table.Memory()
			if len(img.data) > 0 {
				if err := mem.WriteBytes(data, 0, img.data); err != nil {
					return obj.Faultf(obj.FaultOddity, obj.AD{Index: idx}, "%v", err)
				}
			}
			if len(img.access) > 0 {
				if err := mem.WriteBytes(access, 0, img.access); err != nil {
					return obj.Faultf(obj.FaultOddity, obj.AD{Index: idx}, "%v", err)
				}
			}
			m.SwapIns++
			m.SwapCycles += transferCost(len(img.data) + len(img.access))
			return nil
		}
		if f.Code != obj.FaultNoMemory {
			return f
		}
		evicted, ef := m.evictOne()
		if ef != nil {
			return ef
		}
		if !evicted {
			return f
		}
	}
}

// transferCost models the backing-store transfer: a fixed seek plus a
// per-KB streaming cost (vtime constants).
func transferCost(bytes int) vtime.Cycles {
	return vtime.CostSwapIn + vtime.CostSwapPerKB*vtime.Cycles((bytes+1023)/1024)
}
