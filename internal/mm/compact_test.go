package mm

import (
	"testing"

	"repro/internal/obj"
)

func TestCompactReducesFragmentation(t *testing.T) {
	tab, s := setup(t, 1<<20)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	// Build a checkerboard: allocate many objects, free alternates.
	var keep, free []obj.AD
	for i := 0; i < 64; i++ {
		ad, f := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4096})
		if f != nil {
			t.Fatal(f)
		}
		if i%2 == 0 {
			keep = append(keep, ad)
		} else {
			free = append(free, ad)
		}
	}
	for i, ad := range keep {
		if f := tab.WriteDWord(ad, 0, uint32(i)); f != nil {
			t.Fatal(f)
		}
	}
	for _, ad := range free {
		if f := s.Reclaim(ad.Index); f != nil {
			t.Fatal(f)
		}
	}
	fragBefore := tab.Memory().FragCount()
	largestBefore := tab.Memory().LargestFree()
	if fragBefore < 16 {
		t.Fatalf("checkerboard too coalesced to test: %d fragments", fragBefore)
	}
	moved, spent, f := alloc.Compact()
	if f != nil {
		t.Fatal(f)
	}
	if moved == 0 || spent == 0 {
		t.Fatalf("compaction did nothing: moved=%d spent=%v", moved, spent)
	}
	if got := tab.Memory().FragCount(); got >= fragBefore {
		t.Fatalf("fragments %d -> %d", fragBefore, got)
	}
	if got := tab.Memory().LargestFree(); got <= largestBefore {
		t.Fatalf("largest free %d -> %d", largestBefore, got)
	}
	// Every surviving capability still reads its contents: motion is
	// invisible through the descriptor indirection.
	for i, ad := range keep {
		v, f := tab.ReadDWord(ad, 0)
		if f != nil {
			t.Fatalf("object %d unreadable after compaction: %v", i, f)
		}
		if v != uint32(i) {
			t.Fatalf("object %d contents = %d after compaction", i, v)
		}
	}
}

func TestCompactEnablesLargeAllocation(t *testing.T) {
	// The point of compaction: an allocation larger than any free
	// fragment succeeds after compaction without evicting anything.
	tab, s := setup(t, 256*1024)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	var frees []obj.AD
	for i := 0; i < 30; i++ {
		ad, f := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8 * 1024})
		if f != nil {
			t.Fatal(f)
		}
		if i%2 == 1 {
			frees = append(frees, ad)
		}
	}
	for _, ad := range frees {
		if f := s.Reclaim(ad.Index); f != nil {
			t.Fatal(f)
		}
	}
	// ~120 KB free but in 8 KB holes: a 64 KB request cannot fit.
	if tab.Memory().LargestFree() >= 64*1024 {
		t.Skip("fragmentation pattern coalesced; nothing to prove")
	}
	if _, _, f := alloc.Compact(); f != nil {
		t.Fatal(f)
	}
	if tab.Memory().LargestFree() < 64*1024 {
		t.Fatalf("largest free after compaction = %d", tab.Memory().LargestFree())
	}
	if _, f := s.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 64 * 1024}); f != nil {
		t.Fatalf("large allocation after compaction: %v", f)
	}
}

func TestCompactIdempotentWhenTight(t *testing.T) {
	tab, s := setup(t, 1<<20)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	for i := 0; i < 8; i++ {
		if _, f := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 1024}); f != nil {
			t.Fatal(f)
		}
	}
	if _, _, f := alloc.Compact(); f != nil {
		t.Fatal(f)
	}
	moved, _, f := alloc.Compact()
	if f != nil {
		t.Fatal(f)
	}
	if moved != 0 {
		t.Fatalf("second compaction moved %d segments", moved)
	}
}

func TestCompactSkipsSwappedObjects(t *testing.T) {
	tab, s := setup(t, 1<<20)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	a, _ := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4096})
	bAd, _ := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4096})
	if f := alloc.swapOut(bAd.Index); f != nil {
		t.Fatal(f)
	}
	if f := s.Reclaim(a.Index); f != nil {
		t.Fatal(f)
	}
	if _, _, f := alloc.Compact(); f != nil {
		t.Fatal(f)
	}
	// The swapped object must still swap back in cleanly.
	if f := alloc.EnsureResident(bAd.Index); f != nil {
		t.Fatal(f)
	}
	if _, f := tab.ReadDWord(bAd, 0); f != nil {
		t.Fatal(f)
	}
}
