package mm

import (
	"testing"

	"repro/internal/gdp"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/port"
	"repro/internal/process"
	"repro/internal/sro"
)

func setup(t *testing.T, memBytes uint32) (*obj.Table, *sro.Manager) {
	t.Helper()
	tab := obj.NewTable(memBytes)
	return tab, sro.NewManager(tab)
}

func TestBothImplementationsMeetTheInterface(t *testing.T) {
	// §6.2: one specification, two implementations, same client code.
	tab, s := setup(t, 1<<20)
	for _, alloc := range []Allocator{NewNonSwapping(s), NewSwapping(tab, s)} {
		heap, f := alloc.NewHeap(0)
		if f != nil {
			t.Fatalf("%s: NewHeap: %v", alloc.Name(), f)
		}
		ad, f := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 128})
		if f != nil {
			t.Fatalf("%s: Allocate: %v", alloc.Name(), f)
		}
		if fault := tab.WriteDWord(ad, 0, 7); fault != nil {
			t.Fatalf("%s: write: %v", alloc.Name(), fault)
		}
		local, f := alloc.NewLocalHeap(heap, 2, 0)
		if f != nil {
			t.Fatalf("%s: NewLocalHeap: %v", alloc.Name(), f)
		}
		if _, f := alloc.Allocate(local, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 64}); f != nil {
			t.Fatalf("%s: local Allocate: %v", alloc.Name(), f)
		}
		if n, f := alloc.DestroyHeap(local); f != nil || n != 1 {
			t.Fatalf("%s: DestroyHeap = %d, %v", alloc.Name(), n, f)
		}
	}
}

func TestNonSwappingFailsAtPhysicalLimit(t *testing.T) {
	tab, s := setup(t, 4096)
	alloc := NewNonSwapping(s)
	heap, _ := alloc.NewHeap(0)
	var n int
	for {
		_, f := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 512})
		if f != nil {
			if !obj.IsFault(f, obj.FaultNoMemory) {
				t.Fatalf("unexpected fault: %v", f)
			}
			break
		}
		n++
		if n > 64 {
			t.Fatal("never hit the physical limit")
		}
	}
	if n == 0 || tab.Live() == 0 {
		t.Fatal("nothing allocated before exhaustion")
	}
}

func TestSwappingExceedsPhysicalMemory(t *testing.T) {
	// The same workload that kills the non-swapping manager succeeds
	// under the swapping one: virtual space beyond physical memory.
	tab, s := setup(t, 64*1024)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	var ads []obj.AD
	// Allocate 4× physical memory in 4 KB objects.
	for i := 0; i < 64; i++ {
		ad, f := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4096})
		if f != nil {
			t.Fatalf("allocation %d: %v", i, f)
		}
		// Tag each object so we can verify contents after swapping.
		// The write may itself hit a swapped object only if the
		// allocator returned a non-resident newborn, which it must
		// not.
		if fault := tab.WriteDWord(ad, 0, uint32(i)); fault != nil {
			t.Fatalf("tagging %d: %v", i, fault)
		}
		ads = append(ads, ad)
	}
	if alloc.SwapOuts == 0 {
		t.Fatal("no evictions despite 4× overcommit")
	}
	// Every object must be recoverable with its contents intact.
	for i, ad := range ads {
		if f := alloc.EnsureResident(ad.Index); f != nil {
			t.Fatalf("EnsureResident %d: %v", i, f)
		}
		v, fault := tab.ReadDWord(ad, 0)
		if fault != nil {
			t.Fatalf("read %d: %v", i, fault)
		}
		if v != uint32(i) {
			t.Fatalf("object %d contents = %d after swap round trip", i, v)
		}
	}
	if alloc.SwapIns == 0 {
		t.Fatal("no swap-ins recorded")
	}
}

func TestSwappedObjectFaultsOnAccess(t *testing.T) {
	tab, s := setup(t, 1<<20)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	ad, _ := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 256})
	if f := alloc.swapOut(ad.Index); f != nil {
		t.Fatal(f)
	}
	if _, f := tab.ReadByteAt(ad, 0); !obj.IsFault(f, obj.FaultSegmentMoved) {
		t.Fatalf("access to swapped object: %v", f)
	}
	if f := alloc.EnsureResident(ad.Index); f != nil {
		t.Fatal(f)
	}
	if _, f := tab.ReadByteAt(ad, 0); f != nil {
		t.Fatalf("access after swap-in: %v", f)
	}
	// Idempotent.
	if f := alloc.EnsureResident(ad.Index); f != nil {
		t.Fatalf("EnsureResident on resident: %v", f)
	}
}

func TestAccessPartSurvivesSwap(t *testing.T) {
	// Capabilities stored in a swapped object must come back intact.
	tab, s := setup(t, 1<<20)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	dir, _ := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, AccessSlots: 4})
	leaf, _ := alloc.Allocate(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f := tab.StoreAD(dir, 2, leaf); f != nil {
		t.Fatal(f)
	}
	if f := alloc.swapOut(dir.Index); f != nil {
		t.Fatal(f)
	}
	if f := alloc.EnsureResident(dir.Index); f != nil {
		t.Fatal(f)
	}
	got, f := tab.LoadAD(dir, 2)
	if f != nil {
		t.Fatal(f)
	}
	if got != leaf {
		t.Fatalf("capability corrupted by swap: %v != %v", got, leaf)
	}
}

func TestHardwareAnchorsNotSwappable(t *testing.T) {
	tab, s := setup(t, 1<<20)
	alloc := NewSwapping(tab, s)
	heap, _ := alloc.NewHeap(0)
	for _, typ := range []obj.Type{obj.TypeProcess, obj.TypePort, obj.TypeProcessor, obj.TypeSRO, obj.TypeContext, obj.TypeCarrier} {
		ad, f := s.Create(heap, obj.CreateSpec{Type: typ, DataLen: 32, AccessSlots: 4})
		if f != nil {
			t.Fatal(f)
		}
		if alloc.swappable(ad.Index) {
			t.Errorf("%v is swappable", typ)
		}
	}
	g, _ := s.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 32})
	if !alloc.swappable(g.Index) {
		t.Error("generic object not swappable")
	}
}

func TestDestroyHeapReleasesBackingImages(t *testing.T) {
	tab, s := setup(t, 1<<20)
	alloc := NewSwapping(tab, s)
	root, _ := alloc.NewHeap(0)
	local, _ := alloc.NewLocalHeap(root, 1, 0)
	ad, _ := alloc.Allocate(local, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 1024})
	if f := alloc.swapOut(ad.Index); f != nil {
		t.Fatal(f)
	}
	if alloc.Store.Resident() != 1 {
		t.Fatalf("backing images = %d", alloc.Store.Resident())
	}
	if _, f := alloc.DestroyHeap(local); f != nil {
		t.Fatal(f)
	}
	if alloc.Store.Resident() != 0 {
		t.Fatal("backing image leaked by heap destruction")
	}
}

func TestSegmentFaultServiceEndToEnd(t *testing.T) {
	// A VM process touches a swapped-out object; the fault handler
	// process swaps it in and the victim completes, never aware of the
	// interruption (§6.2/§7.3).
	sys, err := gdp.New(gdp.Config{Processors: 1, MemoryBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	swapper := NewSwapping(sys.Table, sys.SROs)
	faultPort, f := sys.Ports.Create(sys.Heap, 16, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	if _, f := sys.SpawnNative(FaultHandlerBody(swapper, faultPort, obj.NilAD), gdp.SpawnSpec{Priority: 15}); f != nil {
		t.Fatal(f)
	}

	target, f := swapper.Allocate(sys.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 64})
	if f != nil {
		t.Fatal(f)
	}
	if fault := sys.Table.WriteDWord(target, 0, 1234); fault != nil {
		t.Fatal(fault)
	}
	out, _ := sys.SROs.Create(sys.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f := swapper.swapOut(target.Index); f != nil {
		t.Fatal(f)
	}

	code, _ := sys.Domains.CreateCode(sys.Heap, []isa.Instr{
		isa.Load(0, 0, 0),  // faults: a0 is swapped out
		isa.Store(0, 1, 0), // out ← the value
		isa.Halt(),
	})
	dom, _ := sys.Domains.Create(sys.Heap, code, []uint32{0})
	victim, f := sys.Spawn(dom, gdp.SpawnSpec{
		FaultPort: faultPort,
		AArgs:     [4]obj.AD{target, out},
	})
	if f != nil {
		t.Fatal(f)
	}
	done := func() bool {
		st, _ := sys.Procs.StateOf(victim)
		return st == process.StateTerminated
	}
	if _, f := sys.RunUntil(done, 50_000_000); f != nil {
		t.Fatal(f)
	}
	if v, _ := sys.Table.ReadDWord(out, 0); v != 1234 {
		t.Fatalf("victim read %d through the segment fault", v)
	}
	if swapper.SwapIns == 0 {
		t.Fatal("no swap-in performed")
	}
}

func TestFaultHandlerForwardsOtherFaults(t *testing.T) {
	sys, err := gdp.New(gdp.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	swapper := NewSwapping(sys.Table, sys.SROs)
	faultPort, _ := sys.Ports.Create(sys.Heap, 16, port.FIFO)
	overflow, _ := sys.Ports.Create(sys.Heap, 16, port.FIFO)
	if _, f := sys.SpawnNative(FaultHandlerBody(swapper, faultPort, overflow), gdp.SpawnSpec{Priority: 15}); f != nil {
		t.Fatal(f)
	}
	code, _ := sys.Domains.CreateCode(sys.Heap, []isa.Instr{
		isa.FaultInject(uint32(obj.FaultRights)),
		isa.Halt(),
	})
	dom, _ := sys.Domains.Create(sys.Heap, code, []uint32{0})
	victim, _ := sys.Spawn(dom, gdp.SpawnSpec{FaultPort: faultPort})
	forwarded := func() bool {
		n, _ := sys.Ports.Count(overflow)
		return n > 0
	}
	if _, f := sys.RunUntil(forwarded, 50_000_000); f != nil {
		t.Fatal(f)
	}
	msg, ok, f := sys.ReceiveMessage(overflow)
	if f != nil || !ok {
		t.Fatalf("overflow port empty: %v %v", ok, f)
	}
	if msg.Index != victim.Index {
		t.Fatal("wrong process forwarded")
	}
}

func TestTransferCost(t *testing.T) {
	if transferCost(0) == 0 {
		t.Error("zero-byte transfer should still cost a seek")
	}
	if transferCost(4096) <= transferCost(1024) {
		t.Error("cost not increasing with size")
	}
}
