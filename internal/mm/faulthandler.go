package mm

import (
	"repro/internal/gdp"
	"repro/internal/obj"
	"repro/internal/process"
	"repro/internal/vtime"
)

// FaultHandlerBody returns the native body of the segment-fault service:
// a system process (level 2 in the §7.3 discipline — it may not fault
// itself) that receives faulted processes from faultPort, restores the
// residency of the object each one touched, and returns the process to
// the dispatching mix. User processes configured with this fault port
// never observe that "a segment might be being moved and therefore be
// inaccessible for some period of time".
//
// Faults other than segment faults are beyond this service; they are
// forwarded to overflowPort if valid, else the process is terminated.
func FaultHandlerBody(m *Swapping, faultPort, overflowPort obj.AD) gdp.NativeBody {
	return gdp.NativeBodyFunc(func(sys *gdp.System, self obj.AD) (vtime.Cycles, gdp.BodyStatus, *obj.Fault) {
		victim, ok, f := sys.ReceiveMessage(faultPort)
		if f != nil {
			return vtime.CostReceive, gdp.BodyYield, f
		}
		if !ok {
			// Nothing to service; sleep until the next fault
			// wakes us via the port. Poll on the interval timer:
			// the fault port cannot name us directly because we
			// service many processes (asynchronous upward
			// communication only, §7.3).
			sys.WakeAt(sys.Now()+2_000, self)
			return vtime.CostReceive, gdp.BodyWaiting, nil
		}
		spent := vtime.CostReceive
		code, f := sys.Procs.FaultCode(victim)
		if f != nil {
			return spent, gdp.BodyYield, f
		}
		if code != obj.FaultSegmentMoved {
			if overflowPort.Valid() {
				_, _ = sys.SendMessage(overflowPort, victim, uint32(code))
			} else {
				_ = sys.Procs.SetState(victim, process.StateTerminated)
			}
			return spent + vtime.CostSend, gdp.BodyYield, nil
		}
		idx, f := sys.Procs.FaultObject(victim)
		if f != nil {
			return spent, gdp.BodyYield, f
		}
		before := m.SwapCycles
		if f := m.EnsureResident(idx); f != nil {
			// The object is unrecoverable (or memory is wedged):
			// the victim cannot make progress; record and park it.
			_ = sys.Procs.SetState(victim, process.StateTerminated)
			return spent, gdp.BodyYield, nil
		}
		spent += m.SwapCycles - before
		m.FaultsServiced++
		if f := sys.Procs.SetState(victim, process.StateReady); f != nil {
			return spent, gdp.BodyYield, f
		}
		if f := sys.MakeReady(victim); f != nil {
			return spent, gdp.BodyYield, f
		}
		return spent, gdp.BodyYield, nil
	})
}
