// Package obj implements the object/capability layer of the simulated 432:
// the global object descriptor table, access descriptors (capabilities) with
// rights, hardware-recognised object types, lifetime level numbers, and the
// checked load/store paths that every higher layer addresses memory through.
//
// This is the microcoded heart of the architecture described in §2 of the
// paper: "Access descriptors or capabilities name entries in a global object
// descriptor table. Each object descriptor ... describes a segment ...
// indicates whether the segment contains data or accesses, indicates what
// type of object it represents, and includes information needed for virtual
// memory management and parallel garbage collection."
package obj

import "fmt"

// Type is a hardware-recognised object type (§2). Objects of these types
// control the processor's implicit operations; Generic objects carry no
// additional hardware semantics. User-defined types layer on top via type
// definition objects (TDOs) without adding Type values.
type Type uint8

// Hardware object types.
const (
	TypeInvalid     Type = iota
	TypeGeneric          // no additional semantics
	TypeProcess          // schedulable activity
	TypeProcessor        // one per physical processor
	TypeSRO              // storage resource object
	TypePort             // interprocess communication port
	TypeDomain           // small protection domain (Ada package)
	TypeContext          // activation record of a domain call
	TypeTDO              // type definition object
	TypeCarrier          // surrogate carrying a blocked process at a port
	TypeInstruction      // code segment of a domain
	numTypes
)

var typeNames = [...]string{
	TypeInvalid:     "invalid",
	TypeGeneric:     "generic",
	TypeProcess:     "process",
	TypeProcessor:   "processor",
	TypeSRO:         "sro",
	TypePort:        "port",
	TypeDomain:      "domain",
	TypeContext:     "context",
	TypeTDO:         "tdo",
	TypeCarrier:     "carrier",
	TypeInstruction: "instruction",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// IsValid reports whether t is a defined hardware type (TypeInvalid is
// not; it marks damaged descriptors to the auditor).
func (t Type) IsValid() bool { return t > TypeInvalid && t < numTypes }

// Rights are the per-capability access control flags (§2: "Each access
// descriptor ... contains rights flags that control the access available
// via that access descriptor"). Read/Write/Delete are uniform; the three
// type rights are interpreted by the type's manager (for ports TR1=send and
// TR2=receive; for SROs TR1=allocate; for domains TR1=call; for processes
// TR1=control; for TDOs TR1=create instance, TR2=amplify).
type Rights uint8

const (
	RightRead Rights = 1 << iota
	RightWrite
	RightDelete
	RightT1
	RightT2
	RightT3

	RightsNone Rights = 0
	RightsAll  Rights = RightRead | RightWrite | RightDelete | RightT1 | RightT2 | RightT3
	// RightsData is a plain data capability: read and write, no control.
	RightsData Rights = RightRead | RightWrite
)

// Has reports whether r includes every right in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

// Restrict removes the rights in drop; rights may always be reduced when a
// capability is copied, never increased except by amplification through a
// TDO (internal/typedef).
func (r Rights) Restrict(drop Rights) Rights { return r &^ drop }

func (r Rights) String() string {
	if r == RightsNone {
		return "-"
	}
	flags := []struct {
		bit Rights
		c   byte
	}{
		{RightRead, 'r'}, {RightWrite, 'w'}, {RightDelete, 'd'},
		{RightT1, '1'}, {RightT2, '2'}, {RightT3, '3'},
	}
	out := make([]byte, 0, 6)
	for _, f := range flags {
		if r&f.bit != 0 {
			out = append(out, f.c)
		}
	}
	return string(out)
}

// Index names an entry in the global object descriptor table.
type Index uint32

// NilIndex is the reserved null entry; an AD with this index is invalid.
const NilIndex Index = 0

// Level is an object lifetime level number (§5). Level 0 objects are
// global and exist forever; higher levels correspond to deeper dynamic
// nesting and progressively shorter lifetimes. The hardware enforces that
// an access for an object may never be stored into an object with a lower
// (more global) level number.
type Level uint16

// LevelGlobal is the level of objects allocated from a global heap.
const LevelGlobal Level = 0

// AD is an access descriptor: the 432's capability. It is a value —
// copying an AD copies the capability — and all authority flows through
// it. The generation field makes reuse of table slots safe: an AD held
// across the destruction of its object becomes detectably dangling rather
// than aliasing a new object (the 432 achieved the same with non-reuse and
// the collector; we make it explicit and testable).
type AD struct {
	Index  Index
	Gen    uint32
	Rights Rights
}

// NilAD is the null capability.
var NilAD = AD{}

// Valid reports whether the AD names a table entry at all (not whether
// that entry is still alive — see Table.Resolve).
func (a AD) Valid() bool { return a.Index != NilIndex }

// Restrict returns a copy of the capability with the given rights removed.
func (a AD) Restrict(drop Rights) AD {
	a.Rights = a.Rights.Restrict(drop)
	return a
}

// WithRights returns a copy of the capability holding exactly the given
// rights; used only by the amplification path in internal/typedef.
func (a AD) WithRights(r Rights) AD {
	a.Rights = r
	return a
}

func (a AD) String() string {
	if !a.Valid() {
		return "AD<nil>"
	}
	return fmt.Sprintf("AD<%d#%d %s>", a.Index, a.Gen, a.Rights)
}

// Encoded AD layout in an access segment slot (8 bytes per slot; the real
// machine used 4 — our wider index and generation fields need the space).
//
//	bits  0..31  index
//	bits 32..55  generation (low 24 bits)
//	bits 56..62  rights
//	bit  63      valid
const (
	adGenShift    = 32
	adGenMask     = 0xFFFFFF
	adRightsShift = 56
	adRightsMask  = 0x3F
	adValidBit    = uint64(1) << 63

	// ADSlotSize is the size in bytes of one access-segment slot.
	ADSlotSize = 8
)

// Encode packs an AD for storage in an access segment.
func (a AD) Encode() uint64 {
	if !a.Valid() {
		return 0
	}
	return adValidBit |
		uint64(a.Index) |
		(uint64(a.Gen)&adGenMask)<<adGenShift |
		(uint64(a.Rights)&adRightsMask)<<adRightsShift
}

// DecodeAD unpacks an access-segment slot.
func DecodeAD(v uint64) AD {
	if v&adValidBit == 0 {
		return NilAD
	}
	return AD{
		Index:  Index(v & 0xFFFFFFFF),
		Gen:    uint32(v >> adGenShift & adGenMask),
		Rights: Rights(v >> adRightsShift & adRightsMask),
	}
}
