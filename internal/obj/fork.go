package obj

import "repro/internal/mem"

// Epoch forks of the object table, for the parallel host backend of the
// multiprocessor driver (internal/gdp).
//
// A fork is a Table whose descriptor lookups are routed through an
// epoch-local shadow: the first touch of a descriptor slot copies it from
// the parent, and every later read or write (the gray-bit shading in
// StoreAD, level rewrites, swap state) lands in the shadow copy. Memory
// accesses go through an epoch fork of the parent's physical memory
// (mem.Fork), which shadows 256-byte pages the same way. The parent table
// is never mutated during speculation.
//
// At the end of an epoch the driver asks each fork for its footprint —
// descriptors touched, descriptors actually changed (detected by comparing
// shadow against parent), memory pages read and written — and commits the
// forks in canonical processor order only if the footprints are pairwise
// non-conflicting. Structural operations that reorder shared allocator
// state (destruction, swapping, collector entry points, creation outside
// a reservation) mark the fork aborted; the driver then discards every
// fork and replays the epoch serially, which is trivially byte-identical
// to the serial backend because speculation never touched real state.
// Creation against a per-CPU reservation (reserve.go) is the exception:
// it consumes pre-granted slots and arena bytes, so it commits with the
// epoch's write set instead of aborting it.
//
// Pipelining adds ForkStash: a fork whose epoch finished cleanly can
// freeze that epoch's footprint and values for a later in-order commit
// (ForkCommitPending) and immediately continue into the next epoch in the
// same shadow. The shadow's copied-from-parent validity is tracked by a
// *chain* stamp that survives the stash — the continuation epoch reads
// its predecessor's uncommitted values — while per-epoch footprint
// membership is tracked by a separate *epoch* stamp that the stash bumps.
type tableFork struct {
	parent  *Table
	shadow  []Descriptor
	stamp   []uint32 // chain stamp: epoch when shadow[i] was copied from the parent
	estamp  []uint32 // epoch stamp: whether slot i is in this epoch's touched list
	touched []Index  // slots resolved this epoch (the read footprint)
	writes  []Index  // scratch reused by ForkDescWrites/commits across epochs
	hazards []Index  // objects that took cache-hazard AD stores this epoch
	chain   uint32
	epoch   uint32
	abort   bool
	reason  ForkAbortReason
	created int // objects created from reservations this epoch

	// Stash of the previous epoch, held while the fork speculates ahead.
	stTouched  []Index
	stWrites   []Index
	stVals     []Descriptor // parallel to stWrites: the values to commit
	stHazards  []Index
	stCreated  int
	stAdStores uint64
	stGrayings uint64
	stashed    bool
}

// ForkAbortReason classifies why a fork aborted its epoch, for the
// driver's split abort accounting.
type ForkAbortReason uint8

const (
	// ForkAbortNone: the epoch is clean.
	ForkAbortNone ForkAbortReason = iota
	// ForkAbortStructural: a structural operation (destroy, swap,
	// allocator mutation, unreserved create) cannot be speculated.
	ForkAbortStructural
	// ForkAbortReservation: a reservation-backed operation ran out of
	// pre-granted capacity and needs a serial top-up.
	ForkAbortReservation
)

// Fork returns an epoch-fork view of the table: same objects, same
// generations, but all descriptor and memory mutation lands in epoch-local
// shadows. Call ForkReset before each epoch; ForkCommit publishes the
// epoch's changes into the parent. The fork is single-goroutine; distinct
// forks of one parent may run concurrently while the parent is quiescent.
// The fork starts with no tracer — install a private one with SetTracer.
func (t *Table) Fork() *Table {
	return &Table{
		mem: t.mem.Fork(),
		fk: &tableFork{
			parent: t,
			chain:  1,
			epoch:  1,
		},
	}
}

// IsFork reports whether this table is an epoch-fork view.
func (t *Table) IsFork() bool { return t.fk != nil }

// ForkReset begins a new speculation epoch against the parent's current
// state: the shadow empties, the footprints clear, any stash drops, the
// abort flag drops, and the per-epoch stats counters rewind. O(1) in the
// table size except when the parent grew.
func (t *Table) ForkReset() {
	fk := t.fk
	fk.chain++
	if fk.chain == 0 { // stamp wrap: scrub rather than alias epochs
		clear(fk.stamp)
		fk.chain = 1
	}
	fk.epoch++
	if fk.epoch == 0 {
		clear(fk.estamp)
		fk.epoch = 1
	}
	if n := len(fk.parent.descs); n > len(fk.shadow) {
		fk.shadow = append(fk.shadow, make([]Descriptor, n-len(fk.shadow))...)
		fk.stamp = append(fk.stamp, make([]uint32, n-len(fk.stamp))...)
		fk.estamp = append(fk.estamp, make([]uint32, n-len(fk.estamp))...)
	}
	fk.touched = fk.touched[:0]
	fk.hazards = fk.hazards[:0]
	fk.abort = false
	fk.reason = ForkAbortNone
	fk.created = 0
	fk.stashed = false
	fk.stCreated = 0
	t.adStores, t.grayings = 0, 0
	t.mem.ForkReset()
}

// ForkStash freezes the current (clean) epoch — its read footprint, its
// descriptor diffs by value, its hazards and stats deltas — for a later
// in-order ForkCommitPending, and starts the continuation epoch in the
// same shadow. The continuation reads the stashed epoch's values (chain
// stamps survive) but records a fresh footprint (epoch stamps bump).
func (t *Table) ForkStash() {
	fk := t.fk
	fk.stTouched = append(fk.stTouched[:0], fk.touched...)
	fk.stWrites = fk.stWrites[:0]
	fk.stVals = fk.stVals[:0]
	for _, idx := range fk.touched {
		if fk.shadow[idx] != fk.parent.descs[idx] {
			fk.stWrites = append(fk.stWrites, idx)
			fk.stVals = append(fk.stVals, fk.shadow[idx])
		}
	}
	fk.stHazards = append(fk.stHazards[:0], fk.hazards...)
	fk.stCreated = fk.created
	fk.stAdStores = t.adStores
	fk.stGrayings = t.grayings
	fk.stashed = true

	fk.epoch++
	if fk.epoch == 0 {
		clear(fk.estamp)
		fk.epoch = 1
	}
	fk.touched = fk.touched[:0]
	fk.hazards = fk.hazards[:0]
	fk.created = 0
	t.adStores, t.grayings = 0, 0
	t.mem.ForkStash()
}

// ForkAborted reports whether this epoch hit a non-speculable operation
// (in the table or in memory) and must be discarded.
func (t *Table) ForkAborted() bool { return t.fk.abort || t.mem.ForkAborted() }

// ForkAbortReasonIs reports why the current epoch aborted, ForkAbortNone
// if it has not.
func (t *Table) ForkAbortReasonIs() ForkAbortReason {
	fk := t.fk
	if fk.reason != ForkAbortNone {
		return fk.reason
	}
	if t.mem.ForkAborted() {
		return ForkAbortStructural
	}
	return ForkAbortNone
}

// ForkTouched reports the descriptor slots this fork resolved this epoch —
// its descriptor read footprint. The slice is owned by the fork and valid
// until the next ForkReset or ForkStash.
func (t *Table) ForkTouched() []Index { return t.fk.touched }

// ForkDescWrites reports the descriptor slots whose shadow copy differs
// from the parent — the fork's descriptor write footprint. The slice is
// owned by the fork (the backing buffer pools across epochs) and is valid
// until the next call or ForkReset.
func (t *Table) ForkDescWrites() []Index {
	fk := t.fk
	out := fk.writes[:0]
	for _, idx := range fk.touched {
		if fk.shadow[idx] != fk.parent.descs[idx] {
			out = append(out, idx)
		}
	}
	fk.writes = out
	return out
}

// ForkPages reports the memory pages the fork read and wrote this epoch.
func (t *Table) ForkPages() (reads, writes []uint32) { return t.mem.ForkFootprint() }

// ForkPageFootprint reports the byte-granular footprint of one memory page
// this epoch, for the driver's conflict refinement on shared boundary pages.
func (t *Table) ForkPageFootprint(p uint32) (read, write mem.PageBits) {
	return t.mem.ForkPageFootprint(p)
}

// ForkPendingTouched reports the stashed epoch's descriptor read footprint.
func (t *Table) ForkPendingTouched() []Index { return t.fk.stTouched }

// ForkPendingDescWrites reports the stashed epoch's descriptor write
// footprint, precomputed at stash time.
func (t *Table) ForkPendingDescWrites() []Index { return t.fk.stWrites }

// ForkPendingPages reports the stashed epoch's memory page footprint.
func (t *Table) ForkPendingPages() (reads, writes []uint32) {
	return t.mem.ForkPendingFootprint()
}

// ForkPendingPageFootprint reports the stashed epoch's byte-granular
// footprint of one memory page.
func (t *Table) ForkPendingPageFootprint(p uint32) (read, write mem.PageBits) {
	return t.mem.ForkPendingPageFootprint(p)
}

// ForkCreated reports how many objects the current epoch created from
// reservations (uncommitted).
func (t *Table) ForkCreated() int { return t.fk.created }

// ForkCommit publishes the current epoch into the parent: changed
// descriptors, written memory pages, reservation-created objects, and the
// per-epoch stats deltas. The driver calls this only after establishing
// that no other fork's footprint overlaps.
//
// It returns the descriptor indices actually written into the parent.
// Committed writes bypass the parent's methods, so they never bump the
// parent's cache generation; the driver is responsible for invalidating
// exactly the execution caches whose pinned objects appear in the returned
// set (footprint-scoped invalidation — see internal/gdp/parallel.go and
// DESIGN.md §8). Memory-byte writes need no invalidation at all: cached
// windows are live views over the same backing array, so committed bytes
// are coherent by aliasing. Structural events (destroy, swap, compaction)
// still bump the generation globally through their own entry points.
func (t *Table) ForkCommit() []Index {
	fk := t.fk
	written := fk.writes[:0]
	for _, idx := range fk.touched {
		if fk.shadow[idx] != fk.parent.descs[idx] {
			fk.parent.descs[idx] = fk.shadow[idx]
			written = append(written, idx)
		}
	}
	// Cache-hazard AD stores (into process or context objects) may change
	// only access-part bytes, leaving the descriptor bit-identical — but
	// they can redirect the very structure an execution cache pins (the
	// current-context slot, the domain slot). Fold those objects into the
	// written set so scoped invalidation sees them.
	written = append(written, fk.hazards...)
	fk.writes = written
	fk.parent.adStores += t.adStores
	fk.parent.grayings += t.grayings
	fk.parent.live += fk.created
	fk.parent.created += uint64(fk.created)
	fk.parent.reserved -= fk.created
	fk.created = 0
	t.mem.ForkCommit()
	return written
}

// ForkCommitPending publishes the stashed epoch into the parent from its
// frozen values, leaving the fork's live (continuation) epoch untouched.
// Same contract as ForkCommit, including the returned written set.
func (t *Table) ForkCommitPending() []Index {
	fk := t.fk
	written := fk.writes[:0]
	for j, idx := range fk.stWrites {
		fk.parent.descs[idx] = fk.stVals[j]
		written = append(written, idx)
	}
	written = append(written, fk.stHazards...)
	fk.writes = written
	fk.parent.adStores += fk.stAdStores
	fk.parent.grayings += fk.stGrayings
	fk.parent.live += fk.stCreated
	fk.parent.created += uint64(fk.stCreated)
	fk.parent.reserved -= fk.stCreated
	fk.stashed = false
	fk.stCreated = 0
	t.mem.ForkCommitPending()
	return written
}

// noteCacheHazard records, during speculation, an object whose access slots
// took an AD store that bumps the cache generation (StoreAD into a process
// or context). ForkCommit reports these alongside the descriptor diffs.
// No-op on a non-fork table — there the generation bump itself suffices.
func (t *Table) noteCacheHazard(idx Index) {
	if t.fk != nil {
		t.fk.hazards = append(t.fk.hazards, idx)
	}
}

// slot returns the descriptor at idx, routed through the epoch shadow for
// forks. The caller has bounds-checked idx against Len. Shadow copies are
// chain-scoped (a stash-continued epoch keeps its predecessor's values);
// footprint membership is epoch-scoped.
func (t *Table) slot(idx Index) *Descriptor {
	if fk := t.fk; fk != nil {
		if fk.stamp[idx] != fk.chain {
			fk.stamp[idx] = fk.chain
			fk.shadow[idx] = fk.parent.descs[idx]
		}
		if fk.estamp[idx] != fk.epoch {
			fk.estamp[idx] = fk.epoch
			fk.touched = append(fk.touched, idx)
		}
		return &fk.shadow[idx]
	}
	t.muts++
	return &t.descs[idx]
}

// forkBar marks the fork aborted (structural) and manufactures the fault
// every structural entry point returns during speculation. The fault never
// becomes visible — the driver discards the fork wholesale — but returning
// one keeps the caller's control flow honest.
func (t *Table) forkBar(what string) *Fault {
	t.fk.abort = true
	if t.fk.reason == ForkAbortNone {
		t.fk.reason = ForkAbortStructural
	}
	return Faultf(FaultOddity, NilAD, "%s is barred during epoch speculation", what)
}

// ForkBarReservation marks the fork aborted because a reservation ran dry.
// The driver's serial replay will top the reservation up and re-execute.
func (t *Table) ForkBarReservation() {
	t.fk.abort = true
	if t.fk.reason == ForkAbortNone {
		t.fk.reason = ForkAbortReservation
	}
}
