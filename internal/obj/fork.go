package obj

import "repro/internal/mem"

// Epoch forks of the object table, for the parallel host backend of the
// multiprocessor driver (internal/gdp).
//
// A fork is a Table whose descriptor lookups are routed through an
// epoch-local shadow: the first touch of a descriptor slot copies it from
// the parent, and every later read or write (the gray-bit shading in
// StoreAD, level rewrites, swap state) lands in the shadow copy. Memory
// accesses go through an epoch fork of the parent's physical memory
// (mem.Fork), which shadows 256-byte pages the same way. The parent table
// is never mutated during speculation.
//
// At the end of an epoch the driver asks each fork for its footprint —
// descriptors touched, descriptors actually changed (detected by comparing
// shadow against parent), memory pages read and written — and commits the
// forks in canonical processor order only if the footprints are pairwise
// non-conflicting. Any structural operation (object creation or
// destruction, swapping, collector entry points) cannot be replayed
// against the shadow without renumbering table slots or the free list, so
// it marks the fork aborted; the driver then discards every fork and
// replays the epoch serially, which is trivially byte-identical to the
// serial backend because speculation never touched real state.
type tableFork struct {
	parent  *Table
	shadow  []Descriptor
	stamp   []uint32 // epoch when shadow[i] was copied from the parent
	touched []Index  // slots copied this epoch (the read footprint)
	writes  []Index  // scratch reused by ForkDescWrites across epochs
	hazards []Index  // objects that took cache-hazard AD stores this epoch
	epoch   uint32
	abort   bool
}

// Fork returns an epoch-fork view of the table: same objects, same
// generations, but all descriptor and memory mutation lands in epoch-local
// shadows. Call ForkReset before each epoch; ForkCommit publishes the
// epoch's changes into the parent. The fork is single-goroutine; distinct
// forks of one parent may run concurrently while the parent is quiescent.
// The fork starts with no tracer — install a private one with SetTracer.
func (t *Table) Fork() *Table {
	return &Table{
		mem: t.mem.Fork(),
		fk: &tableFork{
			parent: t,
			epoch:  1,
		},
	}
}

// IsFork reports whether this table is an epoch-fork view.
func (t *Table) IsFork() bool { return t.fk != nil }

// ForkReset begins a new speculation epoch: the shadow empties, the
// footprints clear, the abort flag drops, and the per-epoch stats counters
// rewind. O(1) in the table size except when the parent grew.
func (t *Table) ForkReset() {
	fk := t.fk
	fk.epoch++
	if fk.epoch == 0 { // stamp wrap: scrub rather than alias epochs
		clear(fk.stamp)
		fk.epoch = 1
	}
	if n := len(fk.parent.descs); n > len(fk.shadow) {
		fk.shadow = append(fk.shadow, make([]Descriptor, n-len(fk.shadow))...)
		fk.stamp = append(fk.stamp, make([]uint32, n-len(fk.stamp))...)
	}
	fk.touched = fk.touched[:0]
	fk.hazards = fk.hazards[:0]
	fk.abort = false
	t.adStores, t.grayings = 0, 0
	t.mem.ForkReset()
}

// ForkAborted reports whether this epoch hit a structural operation (in
// the table or in memory) and must be discarded.
func (t *Table) ForkAborted() bool { return t.fk.abort || t.mem.ForkAborted() }

// ForkTouched reports the descriptor slots this fork resolved this epoch —
// its descriptor read footprint. The slice is owned by the fork and valid
// until the next ForkReset.
func (t *Table) ForkTouched() []Index { return t.fk.touched }

// ForkDescWrites reports the descriptor slots whose shadow copy differs
// from the parent — the fork's descriptor write footprint. The slice is
// owned by the fork (the backing buffer pools across epochs) and is valid
// until the next call or ForkReset.
func (t *Table) ForkDescWrites() []Index {
	fk := t.fk
	out := fk.writes[:0]
	for _, idx := range fk.touched {
		if fk.shadow[idx] != fk.parent.descs[idx] {
			out = append(out, idx)
		}
	}
	fk.writes = out
	return out
}

// ForkPages reports the memory pages the fork read and wrote this epoch.
func (t *Table) ForkPages() (reads, writes []uint32) { return t.mem.ForkFootprint() }

// ForkPageFootprint reports the byte-granular footprint of one memory page
// this epoch, for the driver's conflict refinement on shared boundary pages.
func (t *Table) ForkPageFootprint(p uint32) (read, write mem.PageBits) {
	return t.mem.ForkPageFootprint(p)
}

// ForkCommit publishes the epoch into the parent: changed descriptors,
// written memory pages, and the per-epoch stats deltas. The driver calls
// this only after establishing that no other fork's footprint overlaps.
//
// It returns the descriptor indices actually written into the parent.
// Committed writes bypass the parent's methods, so they never bump the
// parent's cache generation; the driver is responsible for invalidating
// exactly the execution caches whose pinned objects appear in the returned
// set (footprint-scoped invalidation — see internal/gdp/parallel.go and
// DESIGN.md §8). Memory-byte writes need no invalidation at all: cached
// windows are live views over the same backing array, so committed bytes
// are coherent by aliasing. Structural events (destroy, swap, compaction)
// still bump the generation globally through their own entry points.
func (t *Table) ForkCommit() []Index {
	fk := t.fk
	written := fk.writes[:0]
	for _, idx := range fk.touched {
		if fk.shadow[idx] != fk.parent.descs[idx] {
			fk.parent.descs[idx] = fk.shadow[idx]
			written = append(written, idx)
		}
	}
	// Cache-hazard AD stores (into process or context objects) may change
	// only access-part bytes, leaving the descriptor bit-identical — but
	// they can redirect the very structure an execution cache pins (the
	// current-context slot, the domain slot). Fold those objects into the
	// written set so scoped invalidation sees them.
	written = append(written, fk.hazards...)
	fk.writes = written
	fk.parent.adStores += t.adStores
	fk.parent.grayings += t.grayings
	t.mem.ForkCommit()
	return written
}

// noteCacheHazard records, during speculation, an object whose access slots
// took an AD store that bumps the cache generation (StoreAD into a process
// or context). ForkCommit reports these alongside the descriptor diffs.
// No-op on a non-fork table — there the generation bump itself suffices.
func (t *Table) noteCacheHazard(idx Index) {
	if t.fk != nil {
		t.fk.hazards = append(t.fk.hazards, idx)
	}
}

// slot returns the descriptor at idx, routed through the epoch shadow for
// forks. The caller has bounds-checked idx against Len.
func (t *Table) slot(idx Index) *Descriptor {
	if fk := t.fk; fk != nil {
		if fk.stamp[idx] != fk.epoch {
			fk.stamp[idx] = fk.epoch
			fk.shadow[idx] = fk.parent.descs[idx]
			fk.touched = append(fk.touched, idx)
		}
		return &fk.shadow[idx]
	}
	return &t.descs[idx]
}

// forkBar marks the fork aborted and manufactures the fault every
// structural entry point returns during speculation. The fault never
// becomes visible — the driver discards the fork wholesale — but returning
// one keeps the caller's control flow honest.
func (t *Table) forkBar(what string) *Fault {
	t.fk.abort = true
	return Faultf(FaultOddity, NilAD, "%s is barred during epoch speculation", what)
}
