package obj

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Color is the tri-colour marking state used by the on-the-fly collector
// (§8.1, after Dijkstra et al.). White objects are candidates for
// reclamation, black objects have been scanned, gray objects are reachable
// but not yet scanned. The mutator's only obligation is the gray bit,
// maintained by the AD-move microcode in StoreAD.
type Color uint8

const (
	White Color = iota
	Gray
	Black
)

func (c Color) String() string {
	switch c {
	case White:
		return "white"
	case Gray:
		return "gray"
	case Black:
		return "black"
	}
	return fmt.Sprintf("color(%d)", uint8(c))
}

// Descriptor is one entry in the global object descriptor table (§2): the
// single authoritative description of an object. There is exactly one
// descriptor per object, however many ADs reference it.
type Descriptor struct {
	Valid bool
	Type  Type
	// UserType names the type definition object (TDO) that gave this
	// object its user-defined type, or NilIndex for plain hardware
	// typing (§7.2: user types enjoy the same hardware guarantee).
	UserType Index
	Gen      uint32
	Level    Level
	// SRO is the storage resource object this object was allocated
	// from; its destruction bulk-frees the object (§5).
	SRO Index

	// Data is the data part (up to 64 KB); Access is the access part
	// holding AccessSlots encoded ADs of ADSlotSize bytes each.
	Data        mem.Extent
	DataLen     uint32
	Access      mem.Extent
	AccessSlots uint32

	// Garbage collection state (§8.1).
	Color Color
	// Pinned objects are roots the collector must never reclaim
	// (processor objects, the system directory).
	Pinned bool
	// Finalized records that the destruction filter (§8.2) has already
	// delivered this object to its type manager once; when it becomes
	// garbage again it reclaims normally.
	Finalized bool

	// Virtual memory state (§6.2). A swapped-out object's extents are
	// invalid; SwapToken names its image in the backing store. Access
	// raises FaultSegmentMoved for the memory manager to service.
	SwappedOut bool
	SwapToken  uint64
}

// Table is the global object descriptor table. All object creation,
// destruction and access flows through it; it owns physical memory.
//
// The table is not safe for unsynchronised concurrent use: the lock-step
// processor driver serialises all microcode, mirroring the single shared
// memory bus of the real machine.
type Table struct {
	mem   *mem.Memory
	descs []Descriptor
	free  []Index // free descriptor slots, reused with bumped generations
	live  int     // number of valid descriptors

	// stats for the experiment harness
	created   uint64
	destroyed uint64
	adStores  uint64
	grayings  uint64

	// tr is the kernel event log. nil means tracing is disabled; every
	// emission site checks for nil locally so the disabled path is one
	// branch.
	tr *trace.Log

	// xgen is the cache-invalidation generation consumed by the
	// interpreter's execution cache (internal/gdp). Every operation that
	// could alias cached descriptor state — destruction (including SRO and
	// level reclaim), swap-out/in, extent moves during compaction, AD
	// stores into process or context objects, a committed parallel epoch —
	// bumps it; a cached entry whose snapshot differs is dead.
	xgen uint64

	// muts counts mutations (and conservatively, descriptor accesses that
	// could mutate) performed outside the epoch-fork engine. The parallel
	// driver's pipeline snapshots MutGen to detect state changes between
	// steps; fork commits deliberately do not advance it.
	muts uint64

	// reserved counts descriptor slots currently held out of circulation
	// by reservations (see reserve.go), for Len/audit bookkeeping.
	reserved int

	// fk marks this table as an epoch-fork view (see fork.go): descriptor
	// lookups route through a copy-on-touch shadow and structural
	// operations abort the fork.
	fk *tableFork
}

// NewTable creates an object table over a fresh physical memory of the
// given size. Entry 0 is reserved as the nil object.
func NewTable(memSize uint32) *Table {
	t := &Table{
		mem:   mem.New(memSize),
		descs: make([]Descriptor, 1, 1024),
	}
	return t
}

// Memory exposes the underlying physical store to trusted subsystems (the
// memory manager and experiment harness); ordinary code addresses memory
// only through ADs.
func (t *Table) Memory() *mem.Memory { return t.mem }

// Live reports the number of valid objects. A fork adds its own
// uncommitted reservation-created objects (stashed and current epoch) to
// the parent's count — forks never destroy.
func (t *Table) Live() int {
	if fk := t.fk; fk != nil {
		return fk.parent.live + fk.stCreated + fk.created
	}
	return t.live
}

// Len reports the number of table slots ever allocated (including free
// ones); the collector sweeps this range.
func (t *Table) Len() int {
	if fk := t.fk; fk != nil {
		return len(fk.parent.descs)
	}
	return len(t.descs)
}

// Stats reports object-layer event counts used by the benchmarks.
func (t *Table) Stats() (created, destroyed, adStores, grayings uint64) {
	return t.created, t.destroyed, t.adStores, t.grayings
}

// SetTracer installs (or, with nil, removes) the kernel event log. The
// table is the one structure every subsystem already holds, so it carries
// the tracer for all of them.
func (t *Table) SetTracer(l *trace.Log) { t.tr = l }

// Tracer returns the installed kernel event log, possibly nil. Subsystems
// built over the table (ports, the collector, the process manager) emit
// their events through this.
func (t *Table) Tracer() *trace.Log { return t.tr }

// CacheGen reports the table's cache-invalidation generation. Holders of
// derived state (resolved descriptor windows, decoded operand caches,
// compiled instruction traces) must snapshot it when priming and treat any
// later mismatch as invalidation.
//
// Trace-pin hazard note: the interpreter's trace compiler (internal/gdp)
// fuses hot regions into superinstructions that run over pinned mem.Window
// views with the instruction pointer deferred to region exit. Those runs
// are safe against exactly the hazards this generation covers — destroy,
// swap-out/in, compaction moves, AD stores into process/context objects —
// because a trace executes only from an execution cache whose generation
// was just checked, and no fused operation can bump the generation
// mid-run. Any new table mutation that can invalidate a derived window or
// decoded program MUST bump xgen (directly or via InvalidateCaches), or
// compiled traces will keep executing a world that no longer exists.
//
// An epoch fork reports the sum of its parent's generation and its own:
// fork-local aliasing operations (an AD store into a process or context
// during speculation) bump the fork's generation, and structural events on
// the parent between epochs bump the parent's; either advances the sum, so
// a fork-primed cache goes stale on both kinds of hazard. The parent is
// quiescent while forks execute, so the cross-read is race-free.
func (t *Table) CacheGen() uint64 {
	if t.fk != nil {
		return t.fk.parent.xgen + t.xgen
	}
	return t.xgen
}

// InvalidateCaches bumps the cache-invalidation generation. Table-internal
// aliasing operations bump it themselves; external trusted mutators that
// bypass the table's methods (the compactor rewriting extents through
// DescriptorAt, the parallel driver committing an epoch's descriptor
// writes) must call this explicitly.
func (t *Table) InvalidateCaches() { t.xgen++ }

// MutGen reports a counter that advances on every table or memory
// mutation performed outside the epoch-fork engine — descriptor accesses
// through non-fork resolution (conservatively counted as potential
// mutations, since callers mutate through the returned pointer), object
// creation/destruction, reservation changes, allocator activity. Epoch
// commits do not advance it: the parallel driver accounts for its own
// committed writes separately, and uses MutGen to detect everything else.
func (t *Table) MutGen() uint64 { return t.muts + t.xgen + t.mem.MutGen() }

// Resolve validates an AD against the table: the entry must be live and
// the generation must match. It returns the descriptor for inspection.
// Mutation must go through the table's methods.
func (t *Table) Resolve(a AD) (*Descriptor, *Fault) {
	if !a.Valid() || int(a.Index) >= t.Len() {
		return nil, Faultf(FaultInvalidAD, a, "no such object")
	}
	d := t.slot(a.Index)
	if !d.Valid || d.Gen&adGenMask != a.Gen&adGenMask {
		return nil, Faultf(FaultInvalidAD, a, "object destroyed (dangling capability)")
	}
	return d, nil
}

// resolveRights resolves a and additionally demands the given rights.
func (t *Table) resolveRights(a AD, want Rights) (*Descriptor, *Fault) {
	d, f := t.Resolve(a)
	if f != nil {
		return nil, f
	}
	if !a.Rights.Has(want) {
		return nil, Faultf(FaultRights, a, "need %s", want)
	}
	return d, nil
}

// resolvePresent resolves a with rights and faults FaultSegmentMoved when
// the object is swapped out (§6.2): the memory manager services that fault.
func (t *Table) resolvePresent(a AD, want Rights) (*Descriptor, *Fault) {
	d, f := t.resolveRights(a, want)
	if f != nil {
		return nil, f
	}
	if d.SwappedOut {
		return nil, Faultf(FaultSegmentMoved, a, "swapped out (token %d)", d.SwapToken)
	}
	return d, nil
}

// CreateSpec describes an object to create.
type CreateSpec struct {
	Type        Type
	UserType    Index // TDO, or NilIndex
	Level       Level
	SRO         Index // ancestral storage resource object
	DataLen     uint32
	AccessSlots uint32
	Pinned      bool
}

// Create allocates a new object: both parts from physical memory, a table
// slot (reusing freed slots with a fresh generation), and returns a fully
// privileged AD for it. This is the microcode half of the create-object
// instruction; internal/sro adds the storage-claim accounting and level
// assignment on top.
func (t *Table) Create(spec CreateSpec) (AD, *Fault) {
	if t.fk != nil {
		// Slot and extent allocation order is serial semantics a fork
		// cannot reproduce; the epoch falls back to serial replay.
		return NilAD, t.forkBar("object creation")
	}
	if spec.Type == TypeInvalid || spec.Type >= numTypes {
		return NilAD, Faultf(FaultType, NilAD, "cannot create objects of %s", spec.Type)
	}
	if spec.DataLen > mem.MaxPart || spec.AccessSlots*ADSlotSize > mem.MaxPart {
		return NilAD, Faultf(FaultBounds, NilAD, "part exceeds 64KB (data %d, access %d slots)",
			spec.DataLen, spec.AccessSlots)
	}
	var data, access mem.Extent
	var err error
	if spec.DataLen > 0 {
		data, err = t.mem.Alloc(spec.DataLen)
		if err != nil {
			return NilAD, Faultf(FaultNoMemory, NilAD, "data part: %v", err)
		}
	}
	if spec.AccessSlots > 0 {
		access, err = t.mem.Alloc(spec.AccessSlots * ADSlotSize)
		if err != nil {
			if spec.DataLen > 0 {
				_ = t.mem.Free(data)
			}
			return NilAD, Faultf(FaultNoMemory, NilAD, "access part: %v", err)
		}
	}

	var idx Index
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.descs = append(t.descs, Descriptor{})
		idx = Index(len(t.descs) - 1)
	}
	d := &t.descs[idx]
	gen := d.Gen + 1 // bump on reuse so stale ADs dangle detectably
	*d = Descriptor{
		Valid:       true,
		Type:        spec.Type,
		UserType:    spec.UserType,
		Gen:         gen,
		Level:       spec.Level,
		SRO:         spec.SRO,
		Data:        data,
		DataLen:     spec.DataLen,
		Access:      access,
		AccessSlots: spec.AccessSlots,
		// New objects are born gray: the collector may be mid-cycle,
		// and a white newborn referenced only from a black object
		// would be lost (standard on-the-fly allocation colour).
		Color:  Gray,
		Pinned: spec.Pinned,
	}
	t.live++
	t.created++
	t.muts++
	if l := t.tr; l != nil {
		l.Emit(trace.EvObjCreate, uint32(idx), uint32(spec.Type), uint64(spec.Level))
	}
	return AD{Index: idx, Gen: gen & adGenMask, Rights: RightsAll}, nil
}

// Destroy invalidates the object and returns its storage. It requires the
// Delete right. Destruction is how both the collector's sweep and SRO bulk
// reclamation (§5) dispose of objects; user code generally never calls it —
// objects are garbage collected (§8.1).
func (t *Table) Destroy(a AD) *Fault {
	d, f := t.resolveRights(a, RightDelete)
	if f != nil {
		return f
	}
	return t.destroyDesc(a.Index, d)
}

// DestroyIndex invalidates the object at idx without a capability check;
// only the collector and SRO teardown use it (they operate below the
// capability discipline, as the real microcode did).
func (t *Table) DestroyIndex(idx Index) *Fault {
	if t.fk != nil {
		return t.forkBar("object destruction")
	}
	if int(idx) >= len(t.descs) || idx == NilIndex {
		return Faultf(FaultInvalidAD, AD{Index: idx}, "no such object")
	}
	d := &t.descs[idx]
	if !d.Valid {
		return Faultf(FaultInvalidAD, AD{Index: idx}, "already destroyed")
	}
	return t.destroyDesc(idx, d)
}

func (t *Table) destroyDesc(idx Index, d *Descriptor) *Fault {
	if t.fk != nil {
		return t.forkBar("object destruction")
	}
	t.xgen++ // the slot may be recycled; cached windows over it are dead
	if l := t.tr; l != nil {
		l.Emit(trace.EvObjDestroy, uint32(idx), uint32(d.Type), 0)
	}
	if !d.SwappedOut {
		if d.DataLen > 0 {
			if err := t.mem.Free(d.Data); err != nil {
				return Faultf(FaultOddity, AD{Index: idx}, "freeing data part: %v", err)
			}
		}
		if d.AccessSlots > 0 {
			if err := t.mem.Free(d.Access); err != nil {
				return Faultf(FaultOddity, AD{Index: idx}, "freeing access part: %v", err)
			}
		}
	}
	d.Valid = false
	d.SwappedOut = false
	t.free = append(t.free, idx)
	t.live--
	t.destroyed++
	return nil
}

// TypeOf reports the hardware type of the referenced object.
func (t *Table) TypeOf(a AD) (Type, *Fault) {
	d, f := t.Resolve(a)
	if f != nil {
		return TypeInvalid, f
	}
	return d.Type, nil
}

// UserTypeOf reports the TDO index labelling the object, or NilIndex.
func (t *Table) UserTypeOf(a AD) (Index, *Fault) {
	d, f := t.Resolve(a)
	if f != nil {
		return NilIndex, f
	}
	return d.UserType, nil
}

// LevelOf reports the lifetime level of the referenced object.
func (t *Table) LevelOf(a AD) (Level, *Fault) {
	d, f := t.Resolve(a)
	if f != nil {
		return 0, f
	}
	return d.Level, nil
}

// RequireType resolves a and faults unless the object has hardware type
// want. This is the checked-type path every type manager relies on.
func (t *Table) RequireType(a AD, want Type) (*Descriptor, *Fault) {
	d, f := t.Resolve(a)
	if f != nil {
		return nil, f
	}
	if d.Type != want {
		return nil, Faultf(FaultType, a, "have %s, need %s", d.Type, want)
	}
	return d, nil
}
