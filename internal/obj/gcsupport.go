package obj

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// Collector and memory-manager support. These entry points sit below the
// capability discipline — they are the part of the "hardware" that the
// garbage collector daemon and the swapping memory manager are trusted to
// use (§8.1, §6.2). Nothing else should touch them.

// ColorOf reports the marking colour of the object at idx, and whether the
// slot holds a live object at all.
func (t *Table) ColorOf(idx Index) (Color, bool) {
	if int(idx) >= t.Len() || idx == NilIndex {
		return White, false
	}
	d := t.slot(idx)
	if !d.Valid {
		return White, false
	}
	return d.Color, true
}

// SetColor sets the marking colour of a live object.
func (t *Table) SetColor(idx Index, c Color) {
	if int(idx) < t.Len() && idx != NilIndex {
		if d := t.slot(idx); d.Valid {
			d.Color = c
		}
	}
}

// IsPinned reports whether the object is a permanent root.
func (t *Table) IsPinned(idx Index) bool {
	if int(idx) >= t.Len() || idx == NilIndex {
		return false
	}
	d := t.slot(idx)
	return d.Valid && d.Pinned
}

// Pin marks the object as a permanent root (processor objects, the system
// directory). Pinned objects are never reclaimed.
func (t *Table) Pin(a AD) *Fault {
	d, f := t.Resolve(a)
	if f != nil {
		return f
	}
	d.Pinned = true
	return nil
}

// DescriptorAt exposes the descriptor at idx to trusted subsystems for
// inspection (the collector scanning, the filing system passivating).
// It returns nil for invalid slots.
func (t *Table) DescriptorAt(idx Index) *Descriptor {
	if int(idx) >= t.Len() || idx == NilIndex {
		return nil
	}
	d := t.slot(idx)
	if !d.Valid {
		return nil
	}
	return d
}

// Referents calls fn with each valid AD stored in the object's access
// part. The collector's scan step uses this; it bypasses rights (the
// collector holds no capabilities) but not validity.
func (t *Table) Referents(idx Index, fn func(AD)) *Fault {
	d := t.DescriptorAt(idx)
	if d == nil {
		return Faultf(FaultInvalidAD, AD{Index: idx}, "no such object")
	}
	if d.SwappedOut {
		return Faultf(FaultSegmentMoved, AD{Index: idx}, "cannot scan swapped object")
	}
	for slot := uint32(0); slot < d.AccessSlots; slot++ {
		lo, err := t.mem.ReadDWord(d.Access, slot*ADSlotSize)
		if err != nil {
			return Faultf(FaultOddity, AD{Index: idx}, "%v", err)
		}
		hi, err := t.mem.ReadDWord(d.Access, slot*ADSlotSize+4)
		if err != nil {
			return Faultf(FaultOddity, AD{Index: idx}, "%v", err)
		}
		if a := DecodeAD(uint64(lo) | uint64(hi)<<32); a.Valid() {
			// Skip dangling entries (object since destroyed):
			// they carry no reachability.
			if _, f := t.Resolve(a); f == nil {
				fn(a)
			}
		}
	}
	return nil
}

// AliveBySRO calls fn with the index of every live object whose ancestral
// SRO is sro. SRO bulk destruction (§5: local-heap reclamation) walks this.
func (t *Table) AliveBySRO(sro Index, fn func(Index)) {
	if t.fk != nil {
		// Bulk-reclamation walks precede destruction; abort rather than
		// let a fork see a partial merged view.
		_ = t.forkBar("SRO liveness walk")
		return
	}
	for i := 1; i < len(t.descs); i++ {
		if t.descs[i].Valid && t.descs[i].SRO == sro {
			fn(Index(i))
		}
	}
}

// SwapOut marks the object's segments as resident in the backing store
// under token and releases its physical memory. Only the swapping memory
// manager calls this. The object's contents must already have been copied
// out by the caller (through Memory()).
func (t *Table) SwapOut(idx Index, token uint64) *Fault {
	if t.fk != nil {
		return t.forkBar("swap-out")
	}
	d := t.DescriptorAt(idx)
	if d == nil {
		return Faultf(FaultInvalidAD, AD{Index: idx}, "no such object")
	}
	if d.SwappedOut {
		return Faultf(FaultSegmentMoved, AD{Index: idx}, "already swapped out")
	}
	if d.Pinned {
		return Faultf(FaultOddity, AD{Index: idx}, "cannot swap a pinned object")
	}
	if d.DataLen > 0 {
		if err := t.mem.Free(d.Data); err != nil {
			return Faultf(FaultOddity, AD{Index: idx}, "%v", err)
		}
	}
	if d.AccessSlots > 0 {
		if err := t.mem.Free(d.Access); err != nil {
			return Faultf(FaultOddity, AD{Index: idx}, "%v", err)
		}
	}
	d.SwappedOut = true
	d.SwapToken = token
	t.xgen++ // cached windows over the freed extents are dead
	if l := t.tr; l != nil {
		l.Emit(trace.EvSwapOut, uint32(idx), 0, token)
	}
	return nil
}

// SwapIn reallocates physical memory for a swapped-out object and marks it
// resident again. The caller (the memory manager) then restores the
// contents through Memory(). It reports the fresh extents.
func (t *Table) SwapIn(idx Index) (data, access mem.Extent, f *Fault) {
	if t.fk != nil {
		return data, access, t.forkBar("swap-in")
	}
	d := t.DescriptorAt(idx)
	if d == nil {
		return data, access, Faultf(FaultInvalidAD, AD{Index: idx}, "no such object")
	}
	if !d.SwappedOut {
		return data, access, Faultf(FaultOddity, AD{Index: idx}, "not swapped out")
	}
	var err error
	if d.DataLen > 0 {
		d.Data, err = t.mem.Alloc(d.DataLen)
		if err != nil {
			return data, access, Faultf(FaultNoMemory, AD{Index: idx}, "%v", err)
		}
	}
	if d.AccessSlots > 0 {
		d.Access, err = t.mem.Alloc(d.AccessSlots * ADSlotSize)
		if err != nil {
			if d.DataLen > 0 {
				_ = t.mem.Free(d.Data)
			}
			return data, access, Faultf(FaultNoMemory, AD{Index: idx}, "%v", err)
		}
	}
	d.SwappedOut = false
	d.SwapToken = 0
	t.xgen++ // the object landed at fresh extents; re-prime any windows
	if l := t.tr; l != nil {
		l.Emit(trace.EvSwapIn, uint32(idx), 0, 0)
	}
	return d.Data, d.Access, nil
}
