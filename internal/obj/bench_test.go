package obj

import "testing"

// BenchmarkTableResolve measures the capability-resolution hot path: the
// execution cache exists to keep this off the per-instruction critical
// path, so its cost here is the baseline the cache is judged against.
func BenchmarkTableResolve(b *testing.B) {
	t := NewTable(1 << 20)
	ad, f := t.Create(CreateSpec{Type: TypeGeneric, DataLen: 64})
	if f != nil {
		b.Fatal(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := t.Resolve(ad); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkTableResolveStale measures the refusal path — a dangling AD
// whose generation no longer matches — which the fast path's re-prime
// check must also pay on every invalidation.
func BenchmarkTableResolveStale(b *testing.B) {
	t := NewTable(1 << 20)
	ad, f := t.Create(CreateSpec{Type: TypeGeneric, DataLen: 64})
	if f != nil {
		b.Fatal(f)
	}
	stale := ad
	stale.Gen++
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, f := t.Resolve(stale); f == nil {
			b.Fatal("stale AD resolved")
		}
	}
}
