package obj

import (
	"testing"
	"testing/quick"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	return NewTable(1 << 20)
}

func mustCreate(t *testing.T, tab *Table, spec CreateSpec) AD {
	t.Helper()
	ad, f := tab.Create(spec)
	if f != nil {
		t.Fatalf("Create(%+v): %v", spec, f)
	}
	return ad
}

func TestADEncodeRoundTrip(t *testing.T) {
	f := func(idx uint32, gen uint32, rights uint8) bool {
		a := AD{Index: Index(idx), Gen: gen & adGenMask, Rights: Rights(rights) & RightsAll}
		if !a.Valid() {
			return DecodeAD(a.Encode()) == NilAD
		}
		return DecodeAD(a.Encode()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if DecodeAD(NilAD.Encode()) != NilAD {
		t.Error("nil AD does not round-trip")
	}
}

func TestRights(t *testing.T) {
	r := RightsAll
	if !r.Has(RightRead | RightT3) {
		t.Error("RightsAll missing rights")
	}
	r = r.Restrict(RightWrite | RightDelete)
	if r.Has(RightWrite) || r.Has(RightDelete) {
		t.Error("Restrict did not drop rights")
	}
	if !r.Has(RightRead) {
		t.Error("Restrict dropped unrelated rights")
	}
	if got := (RightRead | RightWrite).String(); got != "rw" {
		t.Errorf("String() = %q", got)
	}
	if RightsNone.String() != "-" {
		t.Errorf("RightsNone.String() = %q", RightsNone.String())
	}
}

func TestCreateAndAccess(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 64, AccessSlots: 4})
	if tab.Live() != 1 {
		t.Fatalf("Live = %d", tab.Live())
	}
	if f := tab.WriteWord(ad, 0, 1234); f != nil {
		t.Fatal(f)
	}
	v, f := tab.ReadWord(ad, 0)
	if f != nil {
		t.Fatal(f)
	}
	if v != 1234 {
		t.Fatalf("ReadWord = %d", v)
	}
	typ, f := tab.TypeOf(ad)
	if f != nil || typ != TypeGeneric {
		t.Fatalf("TypeOf = %v, %v", typ, f)
	}
}

func TestRightsEnforced(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 16})
	ro := ad.Restrict(RightWrite | RightDelete)
	if f := tab.WriteByteAt(ro, 0, 1); !IsFault(f, FaultRights) {
		t.Errorf("write via read-only AD: %v", f)
	}
	if _, f := tab.ReadByteAt(ro, 0); f != nil {
		t.Errorf("read via read-only AD: %v", f)
	}
	if f := tab.Destroy(ro); !IsFault(f, FaultRights) {
		t.Errorf("destroy without Delete right: %v", f)
	}
	wo := ad.Restrict(RightRead)
	if _, f := tab.ReadByteAt(wo, 0); !IsFault(f, FaultRights) {
		t.Errorf("read via write-only AD: %v", f)
	}
}

func TestBoundsEnforced(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8, AccessSlots: 2})
	if _, f := tab.ReadByteAt(ad, 8); !IsFault(f, FaultBounds) {
		t.Errorf("read past data part: %v", f)
	}
	if f := tab.WriteDWord(ad, 6, 0); !IsFault(f, FaultBounds) {
		t.Errorf("write straddling end: %v", f)
	}
	if _, f := tab.LoadAD(ad, 2); !IsFault(f, FaultBounds) {
		t.Errorf("load past access part: %v", f)
	}
	if f := tab.StoreAD(ad, 2, NilAD); !IsFault(f, FaultBounds) {
		t.Errorf("store past access part: %v", f)
	}
}

func TestDanglingCapabilityDetected(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8})
	if f := tab.Destroy(ad); f != nil {
		t.Fatal(f)
	}
	if _, f := tab.ReadByteAt(ad, 0); !IsFault(f, FaultInvalidAD) {
		t.Errorf("use after destroy: %v", f)
	}
	// Slot reuse must not resurrect the old capability.
	ad2 := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8})
	if ad2.Index != ad.Index {
		t.Fatalf("expected slot reuse (got %d, want %d)", ad2.Index, ad.Index)
	}
	if _, f := tab.ReadByteAt(ad, 0); !IsFault(f, FaultInvalidAD) {
		t.Errorf("stale AD aliased a new object: %v", f)
	}
	if _, f := tab.ReadByteAt(ad2, 0); f != nil {
		t.Errorf("fresh AD rejected: %v", f)
	}
}

func TestStoreLoadAD(t *testing.T) {
	tab := newTestTable(t)
	dir := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, AccessSlots: 4})
	leaf := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8})
	if f := tab.StoreAD(dir, 1, leaf); f != nil {
		t.Fatal(f)
	}
	got, f := tab.LoadAD(dir, 1)
	if f != nil {
		t.Fatal(f)
	}
	if got != leaf {
		t.Fatalf("LoadAD = %v, want %v", got, leaf)
	}
	// Empty slots read as nil.
	got, f = tab.LoadAD(dir, 0)
	if f != nil || got.Valid() {
		t.Fatalf("empty slot = %v, %v", got, f)
	}
	// Clearing a slot.
	if f := tab.StoreAD(dir, 1, NilAD); f != nil {
		t.Fatal(f)
	}
	if got, _ := tab.LoadAD(dir, 1); got.Valid() {
		t.Fatal("slot not cleared")
	}
}

func TestMoveADRestrictsRights(t *testing.T) {
	tab := newTestTable(t)
	dir := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, AccessSlots: 1})
	leaf := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8})
	if f := tab.MoveAD(dir, 0, leaf, RightWrite|RightDelete); f != nil {
		t.Fatal(f)
	}
	got, _ := tab.LoadAD(dir, 0)
	if got.Rights.Has(RightWrite) || got.Rights.Has(RightDelete) {
		t.Fatalf("rights not restricted on copy: %v", got.Rights)
	}
	if !got.Rights.Has(RightRead) {
		t.Fatalf("unrelated right dropped: %v", got.Rights)
	}
}

func TestLevelRuleEnforced(t *testing.T) {
	// §5: "an access for an object may never be stored into an object
	// with a lower (more global) level number."
	tab := newTestTable(t)
	global := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, Level: 0, AccessSlots: 2})
	local := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, Level: 5, AccessSlots: 2})

	// Storing a global reference into a local object is fine.
	if f := tab.StoreAD(local, 0, global); f != nil {
		t.Errorf("global into local: %v", f)
	}
	// Storing a local reference into a global object must fault: the
	// reference would dangle when the local heap is destroyed.
	if f := tab.StoreAD(global, 0, local); !IsFault(f, FaultLevel) {
		t.Errorf("local into global: %v, want level fault", f)
	}
	// Same level is fine.
	local2 := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, Level: 5, AccessSlots: 1})
	if f := tab.StoreAD(local, 1, local2); f != nil {
		t.Errorf("same level: %v", f)
	}
}

func TestGrayBitOnADMove(t *testing.T) {
	// §8.1: "the 432 hardware implements the gray bit of that algorithm,
	// setting it whenever access descriptors are moved."
	tab := newTestTable(t)
	dir := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, AccessSlots: 1})
	leaf := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8})
	// Simulate a collector mid-cycle: everything white.
	tab.SetColor(dir.Index, White)
	tab.SetColor(leaf.Index, White)
	if f := tab.StoreAD(dir, 0, leaf); f != nil {
		t.Fatal(f)
	}
	if c, _ := tab.ColorOf(leaf.Index); c != Gray {
		t.Fatalf("moved AD's referent is %v, want gray", c)
	}
	// The container is not shaded — only the moved capability's target.
	if c, _ := tab.ColorOf(dir.Index); c != White {
		t.Fatalf("container is %v, want white", c)
	}
	// A black referent stays black (no downgrade).
	tab.SetColor(leaf.Index, Black)
	if f := tab.StoreAD(dir, 0, leaf); f != nil {
		t.Fatal(f)
	}
	if c, _ := tab.ColorOf(leaf.Index); c != Black {
		t.Fatalf("black referent downgraded to %v", c)
	}
}

func TestNewObjectsBornGray(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8})
	if c, ok := tab.ColorOf(ad.Index); !ok || c != Gray {
		t.Fatalf("newborn colour = %v, want gray", c)
	}
}

func TestRequireType(t *testing.T) {
	tab := newTestTable(t)
	p := mustCreate(t, tab, CreateSpec{Type: TypePort, DataLen: 16, AccessSlots: 4})
	if _, f := tab.RequireType(p, TypePort); f != nil {
		t.Errorf("RequireType(port): %v", f)
	}
	if _, f := tab.RequireType(p, TypeProcess); !IsFault(f, FaultType) {
		t.Errorf("RequireType(process) on port: %v", f)
	}
}

func TestCreateLimits(t *testing.T) {
	tab := newTestTable(t)
	if _, f := tab.Create(CreateSpec{Type: TypeGeneric, DataLen: 65 * 1024}); !IsFault(f, FaultBounds) {
		t.Errorf("data part > 64KB: %v", f)
	}
	if _, f := tab.Create(CreateSpec{Type: TypeInvalid}); !IsFault(f, FaultType) {
		t.Errorf("invalid type: %v", f)
	}
	small := NewTable(64)
	if _, f := small.Create(CreateSpec{Type: TypeGeneric, DataLen: 4096}); !IsFault(f, FaultNoMemory) {
		t.Errorf("exhausted memory: %v", f)
	}
}

func TestCreateRollsBackOnAccessPartFailure(t *testing.T) {
	// If the data part allocates but the access part cannot, the data
	// part must be returned — no storage leak.
	tab := NewTable(1024)
	used := tab.Memory().Used()
	if _, f := tab.Create(CreateSpec{Type: TypeGeneric, DataLen: 512, AccessSlots: 4096}); f == nil {
		t.Fatal("expected failure")
	}
	if tab.Memory().Used() != used {
		t.Fatalf("leaked %d bytes", tab.Memory().Used()-used)
	}
}

func TestReferents(t *testing.T) {
	tab := newTestTable(t)
	dir := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, AccessSlots: 4})
	a := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 4})
	b := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 4})
	if f := tab.StoreAD(dir, 0, a); f != nil {
		t.Fatal(f)
	}
	if f := tab.StoreAD(dir, 3, b); f != nil {
		t.Fatal(f)
	}
	var got []Index
	if f := tab.Referents(dir.Index, func(ad AD) { got = append(got, ad.Index) }); f != nil {
		t.Fatal(f)
	}
	if len(got) != 2 || got[0] != a.Index || got[1] != b.Index {
		t.Fatalf("Referents = %v", got)
	}
	// A dangling entry is skipped, not reported.
	if f := tab.Destroy(a); f != nil {
		t.Fatal(f)
	}
	got = got[:0]
	if f := tab.Referents(dir.Index, func(ad AD) { got = append(got, ad.Index) }); f != nil {
		t.Fatal(f)
	}
	if len(got) != 1 || got[0] != b.Index {
		t.Fatalf("Referents after destroy = %v", got)
	}
}

func TestAliveBySRO(t *testing.T) {
	tab := newTestTable(t)
	sro := mustCreate(t, tab, CreateSpec{Type: TypeSRO, DataLen: 32})
	for i := 0; i < 3; i++ {
		mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 4, SRO: sro.Index})
	}
	mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 4}) // different SRO
	var n int
	tab.AliveBySRO(sro.Index, func(Index) { n++ })
	if n != 3 {
		t.Fatalf("AliveBySRO found %d, want 3", n)
	}
}

func TestSwapOutIn(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 64})
	if f := tab.WriteBytes(ad, 0, []byte("resident")); f != nil {
		t.Fatal(f)
	}
	before := tab.Memory().Used()
	if f := tab.SwapOut(ad.Index, 42); f != nil {
		t.Fatal(f)
	}
	if tab.Memory().Used() >= before {
		t.Fatal("swap-out did not release physical memory")
	}
	// Access now faults with segment-moved, for the memory manager.
	if _, f := tab.ReadByteAt(ad, 0); !IsFault(f, FaultSegmentMoved) {
		t.Fatalf("access to swapped object: %v", f)
	}
	// Double swap-out is rejected.
	if f := tab.SwapOut(ad.Index, 43); !IsFault(f, FaultSegmentMoved) {
		t.Fatalf("double swap-out: %v", f)
	}
	data, _, f := tab.SwapIn(ad.Index)
	if f != nil {
		t.Fatal(f)
	}
	if data.Len != 64 {
		t.Fatalf("swap-in extent len = %d", data.Len)
	}
	// Resident again (contents restoration is the manager's job).
	if _, f := tab.ReadByteAt(ad, 0); f != nil {
		t.Fatalf("access after swap-in: %v", f)
	}
}

func TestPinnedNotSwappable(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeProcessor, DataLen: 16, Pinned: true})
	if f := tab.SwapOut(ad.Index, 1); !IsFault(f, FaultOddity) {
		t.Fatalf("swapping a pinned object: %v", f)
	}
	if !tab.IsPinned(ad.Index) {
		t.Fatal("IsPinned = false")
	}
}

func TestDestroySwappedObject(t *testing.T) {
	// Destroying a swapped-out object must not free physical memory it
	// does not hold.
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 64})
	if f := tab.SwapOut(ad.Index, 7); f != nil {
		t.Fatal(f)
	}
	if f := tab.Destroy(ad); f != nil {
		t.Fatal(f)
	}
	if tab.Live() != 0 {
		t.Fatalf("Live = %d", tab.Live())
	}
}

// TestNoStorageLeak property-checks that creating and destroying arbitrary
// objects returns the memory to exactly its initial occupancy.
func TestNoStorageLeak(t *testing.T) {
	f := func(sizes []uint16) bool {
		tab := NewTable(1 << 20)
		base := tab.Memory().Used()
		var ads []AD
		for _, s := range sizes {
			ad, f := tab.Create(CreateSpec{
				Type:        TypeGeneric,
				DataLen:     uint32(s % 4096),
				AccessSlots: uint32(s % 16),
			})
			if f != nil {
				continue
			}
			ads = append(ads, ad)
		}
		for _, ad := range ads {
			if f := tab.Destroy(ad); f != nil {
				return false
			}
		}
		return tab.Memory().Used() == base && tab.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if TypePort.String() != "port" || Type(99).String() != "type(99)" {
		t.Error("Type.String broken")
	}
	if White.String() != "white" || Gray.String() != "gray" || Black.String() != "black" {
		t.Error("Color.String broken")
	}
}

func TestFaultHelpers(t *testing.T) {
	f := Faultf(FaultRights, NilAD, "need %s", RightRead)
	if !IsFault(f, FaultRights) || IsFault(f, FaultLevel) || IsFault(nil, FaultRights) {
		t.Error("IsFault broken")
	}
	if AsFault(f) != f || AsFault(nil) != nil {
		t.Error("AsFault broken")
	}
	if f.Error() == "" || FaultCode(200).String() == "" {
		t.Error("fault strings empty")
	}
}
