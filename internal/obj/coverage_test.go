package obj

import "testing"

// Coverage for accessors exercised mainly by other packages, plus their
// refusal paths: the checked byte/word/dword/bytes accessors, the system
// AD store, and the table inspection helpers.

func TestDataAccessorsRoundTrip(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 32})
	if f := tab.WriteByteAt(ad, 1, 0xAB); f != nil {
		t.Fatal(f)
	}
	if v, _ := tab.ReadByteAt(ad, 1); v != 0xAB {
		t.Fatalf("byte = %#x", v)
	}
	if f := tab.WriteDWord(ad, 4, 0xDEADBEEF); f != nil {
		t.Fatal(f)
	}
	if v, _ := tab.ReadDWord(ad, 4); v != 0xDEADBEEF {
		t.Fatalf("dword = %#x", v)
	}
	if f := tab.WriteBytes(ad, 8, []byte("bulk")); f != nil {
		t.Fatal(f)
	}
	p, f := tab.ReadBytes(ad, 8, 4)
	if f != nil || string(p) != "bulk" {
		t.Fatalf("bytes = %q, %v", p, f)
	}
}

func TestDataAccessorsRefusals(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 8})
	ro := ad.Restrict(RightWrite)
	wo := ad.Restrict(RightRead)
	if f := tab.WriteDWord(ro, 0, 1); !IsFault(f, FaultRights) {
		t.Errorf("WriteDWord read-only: %v", f)
	}
	if _, f := tab.ReadDWord(wo, 0); !IsFault(f, FaultRights) {
		t.Errorf("ReadDWord write-only: %v", f)
	}
	if f := tab.WriteBytes(ro, 0, []byte{1}); !IsFault(f, FaultRights) {
		t.Errorf("WriteBytes read-only: %v", f)
	}
	if _, f := tab.ReadBytes(wo, 0, 1); !IsFault(f, FaultRights) {
		t.Errorf("ReadBytes write-only: %v", f)
	}
	if _, f := tab.ReadBytes(ad, 5, 10); !IsFault(f, FaultBounds) {
		t.Errorf("ReadBytes out of bounds: %v", f)
	}
	if f := tab.WriteBytes(ad, 5, make([]byte, 10)); !IsFault(f, FaultBounds) {
		t.Errorf("WriteBytes out of bounds: %v", f)
	}
}

func TestStoreADSystemBypassesLevelOnly(t *testing.T) {
	tab := newTestTable(t)
	global := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, Level: 0, AccessSlots: 2})
	local := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, Level: 5, DataLen: 4})
	// The level rule would forbid this store; the system path permits
	// it (hardware queues), while still shading for the collector.
	tab.SetColor(local.Index, White)
	if f := tab.StoreADSystem(global, 0, local); f != nil {
		t.Fatalf("system store refused: %v", f)
	}
	if c, _ := tab.ColorOf(local.Index); c != Gray {
		t.Fatalf("system store did not shade: %v", c)
	}
	// Bounds and rights still enforced.
	if f := tab.StoreADSystem(global, 9, local); !IsFault(f, FaultBounds) {
		t.Errorf("system store out of bounds: %v", f)
	}
	ro := global.Restrict(RightWrite)
	if f := tab.StoreADSystem(ro, 0, local); !IsFault(f, FaultRights) {
		t.Errorf("system store without write right: %v", f)
	}
	// And dangling sources are rejected.
	doomed := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 4})
	if f := tab.Destroy(doomed); f != nil {
		t.Fatal(f)
	}
	if f := tab.StoreADSystem(global, 1, doomed); !IsFault(f, FaultInvalidAD) {
		t.Errorf("system store of dangling AD: %v", f)
	}
}

func TestTableInspectionHelpers(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, Level: 3, DataLen: 4})
	if tab.Len() < 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	created, destroyed, stores, grayings := tab.Stats()
	if created == 0 {
		t.Fatalf("Stats = %d %d %d %d", created, destroyed, stores, grayings)
	}
	if lvl, f := tab.LevelOf(ad); f != nil || lvl != 3 {
		t.Fatalf("LevelOf = %d, %v", lvl, f)
	}
	if ut, f := tab.UserTypeOf(ad); f != nil || ut != NilIndex {
		t.Fatalf("UserTypeOf = %d, %v", ut, f)
	}
	if f := tab.Pin(ad); f != nil {
		t.Fatal(f)
	}
	if !tab.IsPinned(ad.Index) {
		t.Fatal("Pin did not stick")
	}
	if f := tab.DestroyIndex(ad.Index); f != nil {
		t.Fatal(f)
	}
	if f := tab.DestroyIndex(ad.Index); !IsFault(f, FaultInvalidAD) {
		t.Fatalf("double DestroyIndex: %v", f)
	}
	if f := tab.DestroyIndex(NilIndex); !IsFault(f, FaultInvalidAD) {
		t.Fatalf("DestroyIndex(nil): %v", f)
	}
	if _, f := tab.LevelOf(ad); !IsFault(f, FaultInvalidAD) {
		t.Fatalf("LevelOf dangling: %v", f)
	}
	if _, f := tab.UserTypeOf(ad); !IsFault(f, FaultInvalidAD) {
		t.Fatalf("UserTypeOf dangling: %v", f)
	}
}

func TestWithRightsAndStrings(t *testing.T) {
	tab := newTestTable(t)
	ad := mustCreate(t, tab, CreateSpec{Type: TypeGeneric, DataLen: 4})
	weak := ad.WithRights(RightRead)
	if weak.Rights != RightRead {
		t.Fatalf("WithRights = %v", weak.Rights)
	}
	if weak.String() == "" || NilAD.String() != "AD<nil>" {
		t.Error("AD strings broken")
	}
	f := Faultf(FaultRights, ad, "")
	f.Detail = ""
	if f.Error() == "" {
		t.Error("fault without detail renders empty")
	}
}

func TestSwapInFailureModes(t *testing.T) {
	tab := NewTable(600)
	a, f := tab.Create(CreateSpec{Type: TypeGeneric, DataLen: 256})
	if f != nil {
		t.Fatal(f)
	}
	if _, _, f := tab.SwapIn(a.Index); !IsFault(f, FaultOddity) {
		t.Fatalf("SwapIn of resident object: %v", f)
	}
	if f := tab.SwapOut(a.Index, 1); f != nil {
		t.Fatal(f)
	}
	// Fill memory so the swap-in cannot find room.
	if _, f := tab.Create(CreateSpec{Type: TypeGeneric, DataLen: 500}); f != nil {
		t.Fatal(f)
	}
	if _, _, f := tab.SwapIn(a.Index); !IsFault(f, FaultNoMemory) {
		t.Fatalf("SwapIn without room: %v", f)
	}
	if _, _, f := tab.SwapIn(Index(999)); !IsFault(f, FaultInvalidAD) {
		t.Fatalf("SwapIn of nothing: %v", f)
	}
}
