package obj

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// Reservations: pre-granted structural capacity that makes object
// creation legal inside an epoch fork.
//
// The create-object instruction is structural twice over — it pops a slot
// off the table's free LIFO and first-fits an extent out of the shared
// free list — so a speculating fork cannot replay it and historically
// aborted the whole epoch, degrading allocation-heavy workloads (the
// paper's ~80 µs E2 allocate shape) to serial. A Reservation removes both
// structural steps from the instruction: the driver grants each simulated
// CPU a batch of descriptor slots (popped from the free list up front, so
// they are out of circulation) and one arena extent (allocated and
// zeroed up front, with the storage claim charged to the SRO at grant
// time). Creating an object then only writes a descriptor at the next
// reserved slot and bump-allocates both parts from the arena — pure
// descriptor/byte writes that land in the fork shadow and commit with the
// epoch's write set.
//
// The reservation itself is a value: the fork speculates on the CPU
// struct's copy of the cursor, and the cursor advance is published by the
// same CPU copy-back that publishes the clock. An aborted epoch discards
// the copy, and the serial replay re-consumes the identical slots and
// bytes — no unwind step exists because nothing was consumed until a
// commit or a serial execution said so.
type Reservation struct {
	// SRO is the storage resource object the reservation draws from; Gen
	// is its full descriptor generation at grant time, so the reservation
	// goes stale (and is never consumed) if the SRO dies or its slot is
	// recycled.
	SRO Index
	Gen uint32
	// Level is the SRO's lifetime level, cached at grant time so in-fork
	// creation never reads SRO data bytes (which would put the shared SRO
	// page into the fork's footprint).
	Level Level
	// Slots[Next:] are the unconsumed reserved descriptor slots.
	Slots []Index
	Next  int
	// Arena[ArenaOff:] is the unconsumed pre-charged, pre-zeroed storage.
	Arena    mem.Extent
	ArenaOff uint32
	// Consumed counts creates since the last reconcile with the SRO's
	// allocation counter (see sro.RefillReservation).
	Consumed uint32
}

// SlotsLeft reports the unconsumed reserved slots.
func (r *Reservation) SlotsLeft() int { return len(r.Slots) - r.Next }

// ArenaLeft reports the unconsumed arena bytes.
func (r *Reservation) ArenaLeft() uint32 {
	if r.Arena.Len < r.ArenaOff {
		return 0
	}
	return r.Arena.Len - r.ArenaOff
}

// ReserveSlots pops up to n descriptor slots out of circulation and
// appends them to dst: freed slots first (matching Create's reuse order),
// then at most freshCap fresh ones. The cap throttles table growth —
// fresh slots extend the descriptor table, and the collector's passes
// scan the table linearly, so an uncapped batch grant would tax every GC
// cycle with slots the free list could have supplied later. Reserved
// slots hold their old invalid descriptors — no AD can name them — until
// CreateFromReservation materialises objects there or UnreserveSlots
// returns them. Not legal on a fork.
func (t *Table) ReserveSlots(dst []Index, n, freshCap int) []Index {
	granted := 0
	for i := 0; i < n; i++ {
		var idx Index
		if k := len(t.free); k > 0 {
			idx = t.free[k-1]
			t.free = t.free[:k-1]
		} else if freshCap > 0 {
			freshCap--
			t.descs = append(t.descs, Descriptor{})
			idx = Index(len(t.descs) - 1)
		} else {
			break
		}
		dst = append(dst, idx)
		granted++
	}
	if granted > 0 {
		t.reserved += granted
		t.muts++
	}
	return dst
}

// UnreserveSlots returns unconsumed reserved slots to the free list, in
// reverse reservation order so the free LIFO is restored exactly as if
// the slots had never been reserved.
func (t *Table) UnreserveSlots(slots []Index) {
	for i := len(slots) - 1; i >= 0; i-- {
		t.free = append(t.free, slots[i])
	}
	t.reserved -= len(slots)
	t.muts++
}

// ReservedSlots reports how many descriptor slots are currently held out
// of circulation by reservations, for the audit layer's leak check.
func (t *Table) ReservedSlots() int {
	if fk := t.fk; fk != nil {
		return fk.parent.reserved
	}
	return t.reserved
}

// CreateFromReservation materialises an object at the reservation's next
// slot, bump-allocating both parts from its arena. No free-list or
// allocator state moves, so this is legal on an epoch fork: the
// descriptor write lands in the shadow and commits with the epoch.
//
// It handles only the plain shapes the reservation pre-paid for —
// TypeGeneric, unpinned, parts within the remaining arena. Anything else
// reports ok=false and the caller falls back to the structural path
// (which aborts the epoch on a fork and produces the canonical faults
// serially). The caller has already validated the SRO and rights and set
// spec.SRO/spec.Level from the reservation.
func (t *Table) CreateFromReservation(r *Reservation, spec CreateSpec) (AD, bool) {
	if spec.Type != TypeGeneric || spec.UserType != NilIndex || spec.Pinned {
		return NilAD, false
	}
	if spec.DataLen > mem.MaxPart || spec.AccessSlots*ADSlotSize > mem.MaxPart {
		return NilAD, false
	}
	if r.SlotsLeft() == 0 {
		return NilAD, false
	}
	need := spec.DataLen + spec.AccessSlots*ADSlotSize
	if need > r.ArenaLeft() {
		return NilAD, false
	}
	idx := r.Slots[r.Next]
	var data, access mem.Extent
	off := r.Arena.Base + mem.Addr(r.ArenaOff)
	if spec.DataLen > 0 {
		data = mem.Extent{Base: off, Len: spec.DataLen}
		off += mem.Addr(spec.DataLen)
	}
	if spec.AccessSlots > 0 {
		access = mem.Extent{Base: off, Len: spec.AccessSlots * ADSlotSize}
	}

	d := t.slot(idx)
	gen := d.Gen + 1 // bump on reuse so stale ADs dangle detectably
	*d = Descriptor{
		Valid:       true,
		Type:        spec.Type,
		UserType:    spec.UserType,
		Gen:         gen,
		Level:       spec.Level,
		SRO:         spec.SRO,
		Data:        data,
		DataLen:     spec.DataLen,
		Access:      access,
		AccessSlots: spec.AccessSlots,
		Color:       Gray, // born gray, same as Create
	}
	r.Next++
	r.ArenaOff += need
	r.Consumed++
	if fk := t.fk; fk != nil {
		// Parent live/created/reserved bookkeeping is published at commit
		// via the fork's created count; see ForkCommit/ForkCommitPending.
		fk.created++
	} else {
		t.live++
		t.created++
		t.reserved--
	}
	if l := t.tr; l != nil {
		l.Emit(trace.EvObjCreate, uint32(idx), uint32(spec.Type), uint64(spec.Level))
	}
	return AD{Index: idx, Gen: gen & adGenMask, Rights: RightsAll}, true
}
