package obj

// Checked access paths. Every read and write in the system — by user
// processes, iMAX packages, and the collector alike — goes through these
// methods, so a capability's rights and its object's bounds are enforced on
// every reference, exactly the per-reference hardware checking of §7.1.

import "repro/internal/trace"

// ReadByteAt reads the byte at displacement off in the data part.
func (t *Table) ReadByteAt(a AD, off uint32) (byte, *Fault) {
	d, f := t.resolvePresent(a, RightRead)
	if f != nil {
		return 0, f
	}
	v, err := t.mem.ReadByteAt(d.Data, off)
	if err != nil {
		return 0, Faultf(FaultBounds, a, "%v", err)
	}
	return v, nil
}

// WriteByteAt writes the byte at displacement off in the data part.
func (t *Table) WriteByteAt(a AD, off uint32, v byte) *Fault {
	d, f := t.resolvePresent(a, RightWrite)
	if f != nil {
		return f
	}
	if err := t.mem.WriteByteAt(d.Data, off, v); err != nil {
		return Faultf(FaultBounds, a, "%v", err)
	}
	return nil
}

// ReadWord reads the 16-bit ordinal at displacement off in the data part.
func (t *Table) ReadWord(a AD, off uint32) (uint16, *Fault) {
	d, f := t.resolvePresent(a, RightRead)
	if f != nil {
		return 0, f
	}
	v, err := t.mem.ReadWord(d.Data, off)
	if err != nil {
		return 0, Faultf(FaultBounds, a, "%v", err)
	}
	return v, nil
}

// WriteWord writes the 16-bit ordinal at displacement off in the data part.
func (t *Table) WriteWord(a AD, off uint32, v uint16) *Fault {
	d, f := t.resolvePresent(a, RightWrite)
	if f != nil {
		return f
	}
	if err := t.mem.WriteWord(d.Data, off, v); err != nil {
		return Faultf(FaultBounds, a, "%v", err)
	}
	return nil
}

// ReadDWord reads the 32-bit value at displacement off in the data part.
func (t *Table) ReadDWord(a AD, off uint32) (uint32, *Fault) {
	d, f := t.resolvePresent(a, RightRead)
	if f != nil {
		return 0, f
	}
	v, err := t.mem.ReadDWord(d.Data, off)
	if err != nil {
		return 0, Faultf(FaultBounds, a, "%v", err)
	}
	return v, nil
}

// WriteDWord writes the 32-bit value at displacement off in the data part.
func (t *Table) WriteDWord(a AD, off uint32, v uint32) *Fault {
	d, f := t.resolvePresent(a, RightWrite)
	if f != nil {
		return f
	}
	if err := t.mem.WriteDWord(d.Data, off, v); err != nil {
		return Faultf(FaultBounds, a, "%v", err)
	}
	return nil
}

// ReadBytes reads n bytes at displacement off in the data part.
func (t *Table) ReadBytes(a AD, off, n uint32) ([]byte, *Fault) {
	d, f := t.resolvePresent(a, RightRead)
	if f != nil {
		return nil, f
	}
	p, err := t.mem.ReadBytes(d.Data, off, n)
	if err != nil {
		return nil, Faultf(FaultBounds, a, "%v", err)
	}
	return p, nil
}

// WriteBytes writes p at displacement off in the data part.
func (t *Table) WriteBytes(a AD, off uint32, p []byte) *Fault {
	d, f := t.resolvePresent(a, RightWrite)
	if f != nil {
		return f
	}
	if err := t.mem.WriteBytes(d.Data, off, p); err != nil {
		return Faultf(FaultBounds, a, "%v", err)
	}
	return nil
}

// LoadAD loads the access descriptor in the given slot of a's access part.
// Reading an AD requires the Read right on the container.
func (t *Table) LoadAD(a AD, slot uint32) (AD, *Fault) {
	d, f := t.resolvePresent(a, RightRead)
	if f != nil {
		return NilAD, f
	}
	if slot >= d.AccessSlots {
		return NilAD, Faultf(FaultBounds, a, "access slot %d of %d", slot, d.AccessSlots)
	}
	lo, err := t.mem.ReadDWord(d.Access, slot*ADSlotSize)
	if err != nil {
		return NilAD, Faultf(FaultOddity, a, "%v", err)
	}
	hi, err := t.mem.ReadDWord(d.Access, slot*ADSlotSize+4)
	if err != nil {
		return NilAD, Faultf(FaultOddity, a, "%v", err)
	}
	return DecodeAD(uint64(lo) | uint64(hi)<<32), nil
}

// StoreAD stores capability src into the given slot of dst's access part.
// This is the AD-move microcode and carries the two duties §5 and §8.1
// assign to it:
//
//   - the lifetime level check: "an access for an object may never be
//     stored into an object with a lower (more global) level number" — a
//     reference to a short-lived object must not outlive it by hiding in a
//     longer-lived object;
//   - the collector's gray bit: "the 432 hardware implements the gray bit
//     of that algorithm, setting it whenever access descriptors are moved"
//     (Dijkstra's shade-the-target write barrier).
//
// Storing NilAD clears the slot and needs no checks beyond Write.
func (t *Table) StoreAD(dst AD, slot uint32, src AD) *Fault {
	d, f := t.resolvePresent(dst, RightWrite)
	if f != nil {
		return f
	}
	if slot >= d.AccessSlots {
		return Faultf(FaultBounds, dst, "access slot %d of %d", slot, d.AccessSlots)
	}
	if src.Valid() {
		sd, f := t.Resolve(src)
		if f != nil {
			return f
		}
		if sd.Level > d.Level {
			return Faultf(FaultLevel, src,
				"cannot store level-%d object into level-%d object", sd.Level, d.Level)
		}
		// Shade the target of the moved AD for the on-the-fly
		// collector.
		if sd.Color == White {
			sd.Color = Gray
			t.grayings++
			if l := t.tr; l != nil {
				l.Emit(trace.EvGray, uint32(src.Index), 0, 0)
			}
		}
		// A freshly stored reference re-adopts the object: it gets a
		// new destruction-filter life (§8.2). The collector's own
		// filter delivery sets the latch after its deposit, so a
		// delivered-then-dropped object still reclaims quietly.
		sd.Finalized = false
	}
	enc := src.Encode()
	if err := t.mem.WriteDWord(d.Access, slot*ADSlotSize, uint32(enc)); err != nil {
		return Faultf(FaultOddity, dst, "%v", err)
	}
	if err := t.mem.WriteDWord(d.Access, slot*ADSlotSize+4, uint32(enc>>32)); err != nil {
		return Faultf(FaultOddity, dst, "%v", err)
	}
	if d.Type == TypeProcess || d.Type == TypeContext {
		// A user-reachable AD store into a process or context can redirect
		// execution structure the interpreter's execution cache pins (the
		// current context, the domain slot).
		t.xgen++
		t.noteCacheHazard(dst.Index)
	}
	t.adStores++
	if l := t.tr; l != nil {
		l.Emit(trace.EvADStore, uint32(dst.Index), uint32(src.Index), uint64(slot))
	}
	return nil
}

// MoveAD is the capability-passing form of StoreAD: it stores src with
// rights restricted by drop, modelling the 432's rights reduction on copy.
func (t *Table) MoveAD(dst AD, slot uint32, src AD, drop Rights) *Fault {
	return t.StoreAD(dst, slot, src.Restrict(drop))
}

// StoreADSystem is the microcode-internal AD store: it performs validity,
// rights-on-container and gray-bit duties but skips the lifetime level
// check. The hardware's own transient queues need it — a process blocking
// at a more global port is briefly linked below it (via a carrier object)
// even though the process is shorter-lived; the microcode unlinks the
// carrier before the process can die, so no dangling reference is ever
// user-visible. Only the port and dispatching machinery may use this path;
// everything user-reachable goes through StoreAD.
func (t *Table) StoreADSystem(dst AD, slot uint32, src AD) *Fault {
	d, f := t.resolvePresent(dst, RightWrite)
	if f != nil {
		return f
	}
	if slot >= d.AccessSlots {
		return Faultf(FaultBounds, dst, "access slot %d of %d", slot, d.AccessSlots)
	}
	if src.Valid() {
		sd, f := t.Resolve(src)
		if f != nil {
			return f
		}
		if sd.Color == White {
			sd.Color = Gray
			t.grayings++
			if l := t.tr; l != nil {
				l.Emit(trace.EvGray, uint32(src.Index), 0, 0)
			}
		}
		sd.Finalized = false // see StoreAD: storing re-adopts
	}
	enc := src.Encode()
	if err := t.mem.WriteDWord(d.Access, slot*ADSlotSize, uint32(enc)); err != nil {
		return Faultf(FaultOddity, dst, "%v", err)
	}
	if err := t.mem.WriteDWord(d.Access, slot*ADSlotSize+4, uint32(enc>>32)); err != nil {
		return Faultf(FaultOddity, dst, "%v", err)
	}
	if d.Type == TypeProcess {
		// System stores into process slots switch contexts (PushContext,
		// PopContext) and load the carry slot; both alias the execution
		// cache. Context-object system stores are the access registers
		// (SetAReg), which the cache reads through the checked path — no
		// bump, or every AD-handling instruction would thrash the cache.
		// The trace compiler leans on the same discipline: a fused
		// load/store re-reads its a-reg from the live access window on
		// every execution, so a SetAReg under a compiled trace is
		// observed without invalidation (and a vanished operand deopts).
		t.xgen++
		t.noteCacheHazard(dst.Index)
	}
	t.adStores++
	if l := t.tr; l != nil {
		l.Emit(trace.EvADStore, uint32(dst.Index), uint32(src.Index), uint64(slot))
	}
	return nil
}
