package obj

import "fmt"

// FaultCode classifies a protection or addressing fault raised by the
// object layer. Faults propagate as errors through the microcode paths;
// the processor (internal/gdp) turns an unhandled fault into delivery of
// the faulting process to its fault port, and the level discipline of §7.3
// decides which system processes are permitted to fault at all.
type FaultCode uint8

const (
	FaultNone FaultCode = iota
	// FaultInvalidAD: the AD is null, names a destroyed object, or its
	// generation does not match (dangling capability).
	FaultInvalidAD
	// FaultRights: the AD lacks a right required by the operation.
	FaultRights
	// FaultLevel: an AD for a short-lived object was stored into a
	// longer-lived object (§5 lifetime rule).
	FaultLevel
	// FaultType: the object's hardware or user type does not match the
	// operation's requirement.
	FaultType
	// FaultBounds: displacement outside the object's data or access part.
	FaultBounds
	// FaultNoMemory: an allocation could not be satisfied.
	FaultNoMemory
	// FaultSegmentMoved: the segment is swapped out or being moved; the
	// swapping memory manager services this fault (§6.2, §7.3).
	FaultSegmentMoved
	// FaultOddity: internal inconsistency — damage detected inside an
	// object (used by the E10 damage-confinement experiment).
	FaultOddity
	// FaultTimeout: a timed operation expired; the only fault permitted
	// to level-2 system processes (§7.3).
	FaultTimeout
	// FaultStorageClaim: SRO storage claim exhausted (distinct from
	// physical exhaustion).
	FaultStorageClaim
)

var faultNames = map[FaultCode]string{
	FaultNone:         "none",
	FaultInvalidAD:    "invalid access descriptor",
	FaultRights:       "insufficient rights",
	FaultLevel:        "level (lifetime) violation",
	FaultType:         "type mismatch",
	FaultBounds:       "displacement out of bounds",
	FaultNoMemory:     "insufficient storage",
	FaultSegmentMoved: "segment moved or swapped out",
	FaultOddity:       "object damaged",
	FaultTimeout:      "timeout",
	FaultStorageClaim: "storage claim exhausted",
}

func (c FaultCode) String() string {
	if s, ok := faultNames[c]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", uint8(c))
}

// Fault is the error type raised by all object-layer checks.
type Fault struct {
	Code   FaultCode
	AD     AD     // the capability involved, if any
	Detail string // human-readable specifics
}

func (f *Fault) Error() string {
	if f.Detail == "" {
		return fmt.Sprintf("fault: %s on %s", f.Code, f.AD)
	}
	return fmt.Sprintf("fault: %s on %s: %s", f.Code, f.AD, f.Detail)
}

// Faultf constructs a Fault.
func Faultf(code FaultCode, ad AD, format string, args ...any) *Fault {
	return &Fault{Code: code, AD: ad, Detail: fmt.Sprintf(format, args...)}
}

// IsFault reports whether err is a Fault with the given code. A nil
// *Fault (in either typed or untyped form) matches nothing.
func IsFault(err error, code FaultCode) bool {
	f, ok := err.(*Fault)
	return ok && f != nil && f.Code == code
}

// AsFault extracts the Fault from err, or nil.
func AsFault(err error) *Fault {
	f, _ := err.(*Fault)
	return f
}
