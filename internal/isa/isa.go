// Package isa defines the instruction set of the simulated GDP (general
// data processor). The set is deliberately small — enough to express the
// workloads of the paper's experiments — but its object operations are the
// real 432 repertoire: create-object, send, receive, inter-domain call and
// return are single instructions backed by complex microcode (§2: the 432
// provides "a number of high level implicit operations and instructions").
//
// Instructions are encoded 16 bytes each into the data part of an
// instruction object, so code is stored, typed, collected and filed like
// any other object.
package isa

import "fmt"

// Op is an operation code.
type Op uint8

// Register file: each context has 8 data registers (r0..r7, 32-bit) and 4
// access registers (a0..a3) holding capabilities.
const (
	NumDataRegs   = 8
	NumAccessRegs = 4
)

// Operations. Field usage is given as (A, B, C); unused fields are zero.
const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpHalt terminates the process normally.
	OpHalt

	// Data movement and arithmetic on data registers.
	OpMovI // rA ← imm C
	OpMov  // rA ← rB
	OpAdd  // rA ← rB + rC
	OpAddI // rA ← rB + imm C
	OpSub  // rA ← rB - rC
	OpMul  // rA ← rB * rC

	// Control flow. Branch targets are absolute instruction indexes.
	OpBr  // goto C
	OpBrZ // if rA == 0 goto C
	OpBrNZ
	OpBrLT // if rA < rB goto C (unsigned)

	// Memory access through a capability: 32-bit transfers between a
	// data register and the data part of the object in access register
	// aB, at byte displacement imm C.
	OpLoad  // rA ← (aB)[C]
	OpStore // (aB)[C] ← rA

	// Capability movement: between access registers and the access part
	// of an object.
	OpLoadA  // aA ← slot C of (aB)
	OpStoreA // slot C of (aB) ← aA
	OpMovA   // aA ← aB

	// Object operations.
	OpCreate // aA ← create from SRO in aB: data bytes rC, access slots r(C+1)
	OpSend   // send message aA to port aB, key rC; may block
	OpRecv   // aA ← receive from port aB; may block
	OpCSend  // conditional send: rC ← 1 if sent, 0 if it would block
	OpCRecv  // conditional receive: rC ← 1 if received into aA, else 0

	// Inter-domain transfer. OpCall invokes the domain in aB, passing
	// access registers a0..a3 and data registers r0..r3 as arguments;
	// results return in r0/a0. OpCallLocal is the intra-domain
	// procedure activation used as E1's baseline: same transfer of
	// control, no protection switch.
	OpCall      // call domain aB, entry index C
	OpCallLocal // call entry C within the current domain
	OpRet       // return from the current context

	// OpTypeOf loads a small integer tag of aB's hardware type into rA;
	// the runtime type inspection the Intel Ada extensions exposed.
	OpTypeOf
	// OpAmplify raises the rights of the capability in aA for an
	// instance of the TDO in aB, granting the rights in imm C — the
	// type-manager entry operation (§4: only the holder of the TDO's
	// amplify right can open its sealed objects). Faults unless aA is
	// an instance of aB's type and aB carries the amplify right.
	OpAmplify
	// OpIsType sets rA to 1 when aB is an instance of the TDO in aC's
	// access register... encoded: rA ← (aB is instance of TDO a(C)),
	// the runtime check of §4's dynamically typed ports.
	OpIsType

	// OpFault deliberately raises fault code C — the fault-injection
	// hook for the damage-confinement experiment (E10).
	OpFault

	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt",
	OpMovI: "movi", OpMov: "mov", OpAdd: "add", OpAddI: "addi",
	OpSub: "sub", OpMul: "mul",
	OpBr: "br", OpBrZ: "brz", OpBrNZ: "brnz", OpBrLT: "brlt",
	OpLoad: "load", OpStore: "store",
	OpLoadA: "loada", OpStoreA: "storea", OpMovA: "mova",
	OpCreate: "create", OpSend: "send", OpRecv: "recv",
	OpCSend: "csend", OpCRecv: "crecv",
	OpCall: "call", OpCallLocal: "calll", OpRet: "ret",
	OpTypeOf: "typeof", OpFault: "fault",
	OpAmplify: "amplify", OpIsType: "istype",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation.
func (o Op) Valid() bool { return o < numOps }

// Instr is one decoded instruction.
type Instr struct {
	Op   Op
	A, B uint8
	C    uint32
}

func (i Instr) String() string {
	return fmt.Sprintf("%s %d,%d,%d", i.Op, i.A, i.B, i.C)
}

// InstrSize is the encoded size of one instruction in an instruction
// object's data part.
const InstrSize = 16

// Encode packs the instruction into 16 little-endian bytes.
func (i Instr) Encode() [InstrSize]byte {
	var b [InstrSize]byte
	b[0] = byte(i.Op)
	b[1] = i.A
	b[2] = i.B
	b[4] = byte(i.C)
	b[5] = byte(i.C >> 8)
	b[6] = byte(i.C >> 16)
	b[7] = byte(i.C >> 24)
	return b
}

// Decode unpacks an instruction encoded by Encode.
func Decode(b []byte) (Instr, error) {
	if len(b) < InstrSize {
		return Instr{}, fmt.Errorf("isa: short instruction (%d bytes)", len(b))
	}
	i := Instr{
		Op: Op(b[0]),
		A:  b[1],
		B:  b[2],
		C:  uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24,
	}
	if !i.Op.Valid() {
		return Instr{}, fmt.Errorf("isa: invalid opcode %d", b[0])
	}
	return i, nil
}

// EncodeProgram packs a program for storage in an instruction object.
func EncodeProgram(prog []Instr) []byte {
	out := make([]byte, 0, len(prog)*InstrSize)
	for _, i := range prog {
		b := i.Encode()
		out = append(out, b[:]...)
	}
	return out
}

// DecodeProgram unpacks a whole code image.
func DecodeProgram(b []byte) ([]Instr, error) {
	if len(b)%InstrSize != 0 {
		return nil, fmt.Errorf("isa: code image length %d not a multiple of %d", len(b), InstrSize)
	}
	prog := make([]Instr, 0, len(b)/InstrSize)
	for off := 0; off < len(b); off += InstrSize {
		in, err := Decode(b[off : off+InstrSize])
		if err != nil {
			return nil, fmt.Errorf("isa: at instruction %d: %w", off/InstrSize, err)
		}
		prog = append(prog, in)
	}
	return prog, nil
}
