package isa

// Assembler convenience constructors. Workload generators and tests build
// programs with these instead of raw struct literals, which keeps operand
// roles readable at the call site.

// Nop does nothing for one instruction slot.
func Nop() Instr { return Instr{Op: OpNop} }

// Halt terminates the process.
func Halt() Instr { return Instr{Op: OpHalt} }

// MovI sets data register r to the immediate v.
func MovI(r uint8, v uint32) Instr { return Instr{Op: OpMovI, A: r, C: v} }

// Mov copies data register b into a.
func Mov(a, b uint8) Instr { return Instr{Op: OpMov, A: a, B: b} }

// Add computes a ← b + c.
func Add(a, b, c uint8) Instr { return Instr{Op: OpAdd, A: a, B: b, C: uint32(c)} }

// AddI computes a ← b + v.
func AddI(a, b uint8, v uint32) Instr { return Instr{Op: OpAddI, A: a, B: b, C: v} }

// Sub computes a ← b - c.
func Sub(a, b, c uint8) Instr { return Instr{Op: OpSub, A: a, B: b, C: uint32(c)} }

// Mul computes a ← b * c.
func Mul(a, b, c uint8) Instr { return Instr{Op: OpMul, A: a, B: b, C: uint32(c)} }

// Br jumps to absolute instruction index target.
func Br(target uint32) Instr { return Instr{Op: OpBr, C: target} }

// BrZ jumps to target when register r is zero.
func BrZ(r uint8, target uint32) Instr { return Instr{Op: OpBrZ, A: r, C: target} }

// BrNZ jumps to target when register r is non-zero.
func BrNZ(r uint8, target uint32) Instr { return Instr{Op: OpBrNZ, A: r, C: target} }

// BrLT jumps to target when ra < rb (unsigned).
func BrLT(ra, rb uint8, target uint32) Instr {
	return Instr{Op: OpBrLT, A: ra, B: rb, C: target}
}

// Load reads the 32-bit word at byte displacement off of the object in
// access register ab into data register r.
func Load(r, ab uint8, off uint32) Instr { return Instr{Op: OpLoad, A: r, B: ab, C: off} }

// Store writes data register r to byte displacement off of the object in
// access register ab.
func Store(r, ab uint8, off uint32) Instr { return Instr{Op: OpStore, A: r, B: ab, C: off} }

// LoadA loads access slot n of the object in ab into access register aa.
func LoadA(aa, ab uint8, n uint32) Instr { return Instr{Op: OpLoadA, A: aa, B: ab, C: n} }

// StoreA stores access register aa into access slot n of the object in ab.
func StoreA(aa, ab uint8, n uint32) Instr { return Instr{Op: OpStoreA, A: aa, B: ab, C: n} }

// MovA copies access register ab into aa.
func MovA(aa, ab uint8) Instr { return Instr{Op: OpMovA, A: aa, B: ab} }

// Create allocates an object from the SRO in access register asro with
// rc data bytes and r(c+1) access slots, leaving the capability in aa.
func Create(aa, asro, rc uint8) Instr { return Instr{Op: OpCreate, A: aa, B: asro, C: uint32(rc)} }

// Send sends the message in access register am to the port in ap with the
// key in data register rkey.
func Send(am, ap, rkey uint8) Instr { return Instr{Op: OpSend, A: am, B: ap, C: uint32(rkey)} }

// Recv receives from the port in ap into access register am.
func Recv(am, ap uint8) Instr { return Instr{Op: OpRecv, A: am, B: ap} }

// CSend is the conditional send; data register rok receives 1 on success,
// 0 if the send would block.
func CSend(am, ap, rok uint8) Instr { return Instr{Op: OpCSend, A: am, B: ap, C: uint32(rok)} }

// CRecv is the conditional receive; rok receives 1 when a message arrived
// in am.
func CRecv(am, ap, rok uint8) Instr { return Instr{Op: OpCRecv, A: am, B: ap, C: uint32(rok)} }

// Call invokes entry point entry of the domain in access register ad.
func Call(ad uint8, entry uint32) Instr { return Instr{Op: OpCall, B: ad, C: entry} }

// CallLocal invokes entry point entry of the current domain without a
// protection switch (E1's baseline).
func CallLocal(entry uint32) Instr { return Instr{Op: OpCallLocal, C: entry} }

// Ret returns from the current context.
func Ret() Instr { return Instr{Op: OpRet} }

// TypeOf loads a tag of the hardware type of the object in ab into r.
func TypeOf(r, ab uint8) Instr { return Instr{Op: OpTypeOf, A: r, B: ab} }

// Amplify raises the rights of the instance capability in aa through the
// TDO in ab, granting the rights mask grant.
func Amplify(aa, ab uint8, grant uint32) Instr {
	return Instr{Op: OpAmplify, A: aa, B: ab, C: grant}
}

// IsType sets data register r to 1 when the object in ab is an instance
// of the TDO in access register ac.
func IsType(r, ab, ac uint8) Instr {
	return Instr{Op: OpIsType, A: r, B: ab, C: uint32(ac)}
}

// FaultInject raises fault code c deliberately (experiment E10).
func FaultInject(c uint32) Instr { return Instr{Op: OpFault, C: c} }
