package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, a, b uint8, c uint32) bool {
		in := Instr{Op: Op(op) % numOps, A: a, B: b, C: c}
		enc := in.Encode()
		out, err := Decode(enc[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsBadOpcode(t *testing.T) {
	var b [InstrSize]byte
	b[0] = 0xFF
	if _, err := Decode(b[:]); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestDecodeRejectsShortInput(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("short input accepted")
	}
}

func TestProgramRoundTrip(t *testing.T) {
	prog := []Instr{
		MovI(0, 10),
		MovI(1, 0),
		Add(1, 1, 0),
		AddI(0, 0, ^uint32(0)), // r0--
		BrNZ(0, 2),
		Halt(),
	}
	img := EncodeProgram(prog)
	if len(img) != len(prog)*InstrSize {
		t.Fatalf("image size = %d", len(img))
	}
	got, err := DecodeProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instrs", len(got))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Fatalf("instr %d: got %v want %v", i, got[i], prog[i])
		}
	}
}

func TestDecodeProgramRejectsRaggedImage(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, InstrSize+1)); err == nil {
		t.Error("ragged image accepted")
	}
}

func TestAssemblerFieldPlacement(t *testing.T) {
	cases := []struct {
		got  Instr
		want Instr
	}{
		{MovI(3, 99), Instr{Op: OpMovI, A: 3, C: 99}},
		{Add(1, 2, 3), Instr{Op: OpAdd, A: 1, B: 2, C: 3}},
		{Load(4, 1, 12), Instr{Op: OpLoad, A: 4, B: 1, C: 12}},
		{StoreA(2, 3, 5), Instr{Op: OpStoreA, A: 2, B: 3, C: 5}},
		{Send(1, 2, 3), Instr{Op: OpSend, A: 1, B: 2, C: 3}},
		{Call(2, 7), Instr{Op: OpCall, B: 2, C: 7}},
		{BrLT(1, 2, 9), Instr{Op: OpBrLT, A: 1, B: 2, C: 9}},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %+v want %+v", c.got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpSend.String() != "send" {
		t.Errorf("OpSend = %q", OpSend)
	}
	if Op(200).String() != "op(200)" {
		t.Errorf("bad op = %q", Op(200))
	}
	if s := MovI(1, 2).String(); s == "" {
		t.Error("Instr.String empty")
	}
}
