package vtime

import "math/bits"

// Hist is a deterministic fixed-bucket latency histogram over Cycles.
// Buckets follow an exponent/mantissa layout (histMantissaBits mantissa
// bits per power-of-two octave), so relative bucket error is bounded by
// 2^-histMantissaBits ≈ 12.5% while the whole structure stays integer:
// recording and quantile extraction involve no floating point at all,
// which is what makes scenario percentiles byte-for-byte reproducible
// across hosts and Go releases (FMA contraction and libm differences
// cannot enter). The zero value is an empty histogram ready to use.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64
	max    Cycles
}

const (
	// histMantissaBits sets the sub-bucket resolution: 2^5 = 32 linear
	// sub-buckets per octave, a worst-case quantile error of ~3%.
	histMantissaBits = 5
	histSubBuckets   = 1 << histMantissaBits
	// histBuckets covers the full uint64 range: values below
	// 2*histSubBuckets index linearly, every further octave adds
	// histSubBuckets buckets. 64 octaves suffice with margin.
	histBuckets = (64 + 2) * histSubBuckets
)

// histBucketOf maps a value to its bucket index.
func histBucketOf(v uint64) int {
	if v < 2*histSubBuckets {
		return int(v) // exact linear region
	}
	e := bits.Len64(v) - 1 - histMantissaBits // octave shift, ≥ 1
	return int(uint64(e+1)<<histMantissaBits + (v>>uint(e))&(histSubBuckets-1))
}

// histUpperBound is the largest value mapping to the bucket — the value
// Quantile reports for it. Exact inverse of histBucketOf's linear region;
// in the exponential region it reconstructs exponent and mantissa.
func histUpperBound(b int) uint64 {
	if b < 2*histSubBuckets {
		return uint64(b)
	}
	e := b>>histMantissaBits - 1
	m := uint64(b & (histSubBuckets - 1))
	return (histSubBuckets+m+1)<<uint(e) - 1
}

// Observe records one sample.
func (h *Hist) Observe(c Cycles) {
	h.counts[histBucketOf(uint64(c))]++
	h.n++
	h.sum += uint64(c)
	if c > h.max {
		h.max = c
	}
}

// N reports the number of recorded samples.
func (h *Hist) N() uint64 { return h.n }

// Max reports the largest recorded sample, zero when empty.
func (h *Hist) Max() Cycles { return h.max }

// Mean reports the integer mean of the recorded samples, zero when empty.
func (h *Hist) Mean() Cycles {
	if h.n == 0 {
		return 0
	}
	return Cycles(h.sum / h.n)
}

// Quantile reports the q = num/den quantile (e.g. Quantile(999, 1000) for
// p99.9) as the upper bound of the bucket holding the sample of rank
// ceil(q·N), clamped to the observed maximum. Empty histograms report 0.
// The computation is pure integer arithmetic over the fixed buckets, so
// two histograms with equal contents report equal quantiles everywhere.
func (h *Hist) Quantile(num, den uint64) Cycles {
	if h.n == 0 || den == 0 {
		return 0
	}
	rank := (h.n*num + den - 1) / den
	if rank == 0 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			u := Cycles(histUpperBound(b))
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds every sample of o into h.
func (h *Hist) Merge(o *Hist) {
	for b, c := range o.counts {
		h.counts[b] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
