// Package vtime provides the virtual time base of the simulated iAPX 432
// system: per-processor cycle clocks and the calibrated cost table that maps
// architecture-visible operations to cycle counts.
//
// The paper quotes an 8 MHz processor with no wait-state memory, which gives
// 0.125 µs per cycle. The two costs the paper states explicitly — 65 µs for
// a domain switch (§2) and 80 µs for a segment allocation from an SRO (§5) —
// are therefore 520 and 640 cycles. Every other cost is a documented
// estimate chosen to keep the relative shape of the paper's comparisons:
// absolute microseconds are calibration, relative ordering is measurement.
package vtime

import "fmt"

// Cycles counts simulated processor cycles. Each processor in the system
// owns an independent Cycles clock; system-wide elapsed time is the maximum
// over processors (they run in parallel).
type Cycles uint64

// HzDefault is the clock rate of the simulated processor: 8 MHz, as in the
// paper's cost statements.
const HzDefault = 8_000_000

// Microseconds converts a cycle count to simulated microseconds at the
// default 8 MHz clock.
func (c Cycles) Microseconds() float64 {
	return float64(c) / (HzDefault / 1e6)
}

func (c Cycles) String() string {
	return fmt.Sprintf("%dcy (%.2fµs)", uint64(c), c.Microseconds())
}

// Cost table. All architecture-visible operations charge one of these
// constants to the executing processor's clock.
const (
	// CostDomainCall is the inter-domain subprogram call: 65 µs at 8 MHz
	// (§2: "a domain switch on the 432 takes about 65 microseconds").
	// The cost covers context-object creation and the addressing-
	// environment switch; RET charges the same again for the unwind half
	// is not separate — the paper's 65 µs is the full switch, so we split
	// it: CALL 360 + RET 160 = 520 cycles for a full call/return pair.
	CostDomainCall   Cycles = 360
	CostDomainReturn Cycles = 160

	// CostIntraCall is an intra-domain procedure activation on a
	// contemporary (1981) processor, used as E1's comparison baseline
	// ("compares reasonably with the cost of procedure activation on
	// other contemporary processors"). 15 µs = 120 cycles.
	CostIntraCall   Cycles = 90
	CostIntraReturn Cycles = 30

	// CostCreateObject is segment allocation from an SRO via the create
	// instruction: 80 µs at 8 MHz (§5) = 640 cycles.
	CostCreateObject Cycles = 640

	// CostSend and CostReceive are the port send/receive instructions.
	// The paper calls them single (but complex, microcoded) instructions;
	// the companion IPC paper places them well below a domain switch.
	CostSend    Cycles = 88
	CostReceive Cycles = 88

	// CostDispatch is the implicit hardware dispatch of a ready process
	// onto a processor (process binding + addressing environment load).
	CostDispatch Cycles = 200

	// Ordinary instruction costs.
	CostALU    Cycles = 4  // register-register arithmetic/logic
	CostBranch Cycles = 6  // taken or not; the 432 had no branch cache
	CostMove   Cycles = 10 // data load/store through an access descriptor
	CostMoveAD Cycles = 14 // access-descriptor move: includes level check
	// and gray-bit maintenance for the parallel collector (§8.1).

	// CostAmplify is rights amplification through a type definition
	// object (type-manager entry).
	CostAmplify Cycles = 40

	// CostFault is fault detection and delivery of the faulting process
	// to its fault port.
	CostFault Cycles = 300

	// CostSwapIn is the software path for a segment fault serviced by the
	// swapping memory manager: backing-store transfer dominates; charged
	// per 1 KB transferred in addition to this base.
	CostSwapIn      Cycles = 2000
	CostSwapPerKB   Cycles = 8000
	CostGCMarkStep  Cycles = 20 // collector work per object scanned
	CostGCSweepStep Cycles = 8  // collector work per object swept
)

// Clock is a monotone virtual clock owned by one simulated processor.
// The zero value reads zero and is ready to use.
type Clock struct {
	now Cycles
}

// Now reports the clock's current cycle count.
func (c *Clock) Now() Cycles { return c.now }

// Charge advances the clock by n cycles and reports the new time.
func (c *Clock) Charge(n Cycles) Cycles {
	c.now += n
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later; clocks never run
// backwards. It reports whether the clock moved.
func (c *Clock) AdvanceTo(t Cycles) bool {
	if t <= c.now {
		return false
	}
	c.now = t
	return true
}

// CapAt pulls the clock back to t if it has run past it, reporting whether
// it moved. This is the one sanctioned exception to monotonicity: the
// driver's Run clamps each processor to the run budget after the final
// quantum, so a budgeted run never reports more elapsed time than asked for.
func (c *Clock) CapAt(t Cycles) bool {
	if c.now <= t {
		return false
	}
	c.now = t
	return true
}

// Max returns the later of two instants.
func Max(a, b Cycles) Cycles {
	if a > b {
		return a
	}
	return b
}
