package vtime

import (
	"math/rand"
	"testing"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back to that bucket, and the
	// next value must map to a later bucket — the buckets tile.
	for b := 0; b < histBuckets-histSubBuckets; b++ {
		u := histUpperBound(b)
		if u >= 1<<62 {
			break // u+1 below would overflow uint64 at the top octave
		}
		if got := histBucketOf(u); got != b {
			t.Fatalf("bucket %d: upper bound %d maps to bucket %d", b, u, got)
		}
		if got := histBucketOf(u + 1); got != b+1 {
			t.Fatalf("bucket %d: %d maps to bucket %d, want %d", b, u+1, got, b+1)
		}
	}
}

func TestHistLinearRegionExact(t *testing.T) {
	// Small values are recorded exactly.
	var h Hist
	for v := Cycles(0); v < 2*histSubBuckets; v++ {
		h.Observe(v)
	}
	for i := uint64(1); i <= h.N(); i++ {
		want := Cycles(i - 1)
		if got := h.Quantile(i, h.N()); got != want {
			t.Fatalf("quantile %d/%d = %v, want %v", i, h.N(), got, want)
		}
	}
}

func TestHistRelativeError(t *testing.T) {
	// Bucket upper bounds over-report by at most 2^-histMantissaBits.
	var h Hist
	const v = 123_456_789
	h.Observe(v)
	got := uint64(h.Quantile(1, 2))
	if got < v {
		t.Fatalf("quantile under-reports: %d < %d", got, v)
	}
	if got > v+v>>histMantissaBits {
		t.Fatalf("quantile error too large: %d for sample %d", got, v)
	}
}

func TestHistQuantilesOrderedAndClamped(t *testing.T) {
	var h Hist
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		h.Observe(Cycles(r.Intn(1_000_000)))
	}
	p50 := h.Quantile(50, 100)
	p99 := h.Quantile(99, 100)
	p999 := h.Quantile(999, 1000)
	if p50 > p99 || p99 > p999 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v p999=%v", p50, p99, p999)
	}
	if p999 > h.Max() {
		t.Fatalf("p999 %v exceeds observed max %v", p999, h.Max())
	}
	if h.Quantile(1, 1) != h.Max() {
		t.Fatalf("p100 %v != max %v", h.Quantile(1, 1), h.Max())
	}
}

func TestHistEmptyAndMerge(t *testing.T) {
	var h Hist
	if h.Quantile(1, 2) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	var a, b, whole Hist
	for i := 0; i < 1000; i++ {
		v := Cycles(i * 37 % 5000)
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() || a.Mean() != whole.Mean() || a.Max() != whole.Max() {
		t.Fatal("merge lost samples")
	}
	for _, q := range [][2]uint64{{1, 2}, {99, 100}, {999, 1000}} {
		if a.Quantile(q[0], q[1]) != whole.Quantile(q[0], q[1]) {
			t.Fatalf("merged quantile %d/%d diverges", q[0], q[1])
		}
	}
}
