package vtime

import (
	"testing"
	"testing/quick"
)

func TestCalibration(t *testing.T) {
	// The two costs stated in the paper must survive refactoring:
	// a full domain call/return pair is 65 µs, create-object is 80 µs.
	if got := (CostDomainCall + CostDomainReturn).Microseconds(); got != 65.0 {
		t.Errorf("domain switch = %v µs, paper says 65", got)
	}
	if got := CostCreateObject.Microseconds(); got != 80.0 {
		t.Errorf("create object = %v µs, paper says 80", got)
	}
	// And the intra-domain baseline must stay cheaper than a domain
	// switch or E1's comparison is meaningless.
	if CostIntraCall+CostIntraReturn >= CostDomainCall+CostDomainReturn {
		t.Error("intra-domain call must be cheaper than a domain switch")
	}
}

func TestClockCharge(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %v", c.Now())
	}
	if got := c.Charge(10); got != 10 {
		t.Fatalf("Charge(10) = %v", got)
	}
	c.Charge(5)
	if c.Now() != 15 {
		t.Fatalf("Now() = %v, want 15", c.Now())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Charge(100)
	if c.AdvanceTo(50) {
		t.Error("AdvanceTo(50) moved a clock already at 100")
	}
	if c.Now() != 100 {
		t.Errorf("clock ran backwards to %v", c.Now())
	}
	if !c.AdvanceTo(200) {
		t.Error("AdvanceTo(200) did not move clock at 100")
	}
	if c.Now() != 200 {
		t.Errorf("Now() = %v, want 200", c.Now())
	}
}

func TestClockMonotone(t *testing.T) {
	// Property: any sequence of Charge and AdvanceTo leaves the clock
	// monotone non-decreasing.
	f := func(ops []uint16) bool {
		var c Clock
		prev := c.Now()
		for i, op := range ops {
			if i%2 == 0 {
				c.Charge(Cycles(op))
			} else {
				c.AdvanceTo(Cycles(op))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(4, 4) != 4 {
		t.Error("Max is wrong")
	}
}

func TestMicroseconds(t *testing.T) {
	if got := Cycles(8).Microseconds(); got != 1.0 {
		t.Errorf("8 cycles at 8 MHz = %v µs, want 1", got)
	}
}

func TestString(t *testing.T) {
	if got := Cycles(520).String(); got != "520cy (65.00µs)" {
		t.Errorf("String() = %q", got)
	}
}
