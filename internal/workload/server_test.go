package workload

import (
	"testing"

	"repro/internal/gdp"
	"repro/internal/obj"
	"repro/internal/port"
)

// TestServerLoop drives one request server by hand: three session objects
// through the request port must come back on the reply port with every
// touched dword incremented exactly once.
func TestServerLoop(t *testing.T) {
	sys, err := gdp.New(gdp.Config{Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec := ServerSpec{Demand: 10, Touches: 2, DomainCalls: 1}
	dom, callee, f := NewServerDomain(sys, spec)
	if f != nil {
		t.Fatal(f)
	}
	req, f := sys.Ports.Create(sys.Heap, 8, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	rep, f := sys.Ports.Create(sys.Heap, 8, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	if _, f := sys.Spawn(dom, gdp.SpawnSpec{
		TimeSlice: 5_000,
		AArgs:     [4]obj.AD{callee, obj.NilAD, req, rep},
	}); f != nil {
		t.Fatal(f)
	}
	var sessions []obj.AD
	for i := 0; i < 3; i++ {
		s, f := sys.SROs.Create(sys.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 16})
		if f != nil {
			t.Fatal(f)
		}
		sessions = append(sessions, s)
		if ok, f := sys.SendMessage(req, s, 0); f != nil || !ok {
			t.Fatalf("send %d: ok=%v f=%v", i, ok, f)
		}
	}
	if _, f := sys.Run(1_000_000); f != nil {
		t.Fatal(f)
	}
	got := 0
	for {
		msg, ok, f := sys.ReceiveMessage(rep)
		if f != nil {
			t.Fatal(f)
		}
		if !ok {
			break
		}
		got++
		_ = msg
	}
	if got != 3 {
		t.Fatalf("received %d replies, want 3", got)
	}
	for i, s := range sessions {
		for off := uint32(0); off < 8; off += 4 {
			v, f := sys.Table.ReadDWord(s, off)
			if f != nil {
				t.Fatal(f)
			}
			if v != 1 {
				t.Fatalf("session %d dword %d = %d, want 1", i, off/4, v)
			}
		}
		// Untouched dwords stay zero.
		v, f := sys.Table.ReadDWord(s, 8)
		if f != nil {
			t.Fatal(f)
		}
		if v != 0 {
			t.Fatalf("session %d dword 2 = %d, want 0", i, v)
		}
	}
	if c := spec.RequestCost(); c == 0 {
		t.Fatalf("request cost estimate is zero")
	}
}
