// Package workload provides parameterised synthetic workload generators
// for the experiment harness and benchmarks: compute batches, allocation
// churn, port pipelines and fork/join trees, each returning the process
// capabilities to watch. The generators encode, in one place, the
// workload shapes the paper's claims are evaluated against (independent
// compute for §3 scaling, allocation churn for §5/§8 memory behaviour,
// port meshes for §4 communication).
package workload

import (
	"fmt"

	"repro/internal/gdp"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/port"
	"repro/internal/process"
)

// Handle tracks a spawned workload: the processes to wait for and any
// result objects to read.
type Handle struct {
	Procs   []obj.AD
	Results []obj.AD
}

// Done reports whether every process in the workload has terminated.
func (h *Handle) Done(sys *gdp.System) bool {
	for _, p := range h.Procs {
		st, f := sys.Procs.StateOf(p)
		if f != nil || st != process.StateTerminated {
			return false
		}
	}
	return true
}

// domainFor assembles a single-entry domain.
func domainFor(sys *gdp.System, prog []isa.Instr) (obj.AD, *obj.Fault) {
	code, f := sys.Domains.CreateCode(sys.Heap, prog)
	if f != nil {
		return obj.NilAD, f
	}
	return sys.Domains.Create(sys.Heap, code, []uint32{0})
}

// Compute spawns n independent compute-bound processes, each spinning for
// iters iterations with the given time slice.
func Compute(sys *gdp.System, n int, iters uint32, slice uint32) (*Handle, *obj.Fault) {
	dom, f := domainFor(sys, []isa.Instr{
		isa.MovI(1, iters),
		isa.AddI(1, 1, ^uint32(0)),
		isa.BrNZ(1, 1),
		isa.Halt(),
	})
	if f != nil {
		return nil, f
	}
	h := &Handle{}
	for i := 0; i < n; i++ {
		p, f := sys.Spawn(dom, gdp.SpawnSpec{TimeSlice: slice})
		if f != nil {
			return nil, f
		}
		h.Procs = append(h.Procs, p)
	}
	return h, nil
}

// Churn spawns n allocation-churn processes, each creating and dropping
// allocs objects of objBytes from the system heap — collector fodder.
func Churn(sys *gdp.System, n int, allocs, objBytes uint32, slice uint32) (*Handle, *obj.Fault) {
	dom, f := domainFor(sys, []isa.Instr{
		isa.MovI(4, allocs),
		isa.MovI(2, objBytes),
		isa.MovI(3, 1),
		isa.Create(1, 0, 2),
		isa.AddI(4, 4, ^uint32(0)),
		isa.BrNZ(4, 3),
		isa.Halt(),
	})
	if f != nil {
		return nil, f
	}
	h := &Handle{}
	for i := 0; i < n; i++ {
		p, f := sys.Spawn(dom, gdp.SpawnSpec{
			TimeSlice: slice,
			AArgs:     [4]obj.AD{sys.Heap},
		})
		if f != nil {
			return nil, f
		}
		h.Procs = append(h.Procs, p)
	}
	return h, nil
}

// Pipeline builds a stages-deep pipeline: a generator feeding transform
// stages feeding an accumulator, connected by FIFO ports of the given
// capacity. The accumulator writes the payload sum into Results[0]; for
// items 1..N through S transform stages the expected sum is
// N(N+1)/2 + N*S.
func Pipeline(sys *gdp.System, stages int, items uint32, capacity uint16, slice uint32) (*Handle, *obj.Fault) {
	if stages < 1 {
		return nil, obj.Faultf(obj.FaultBounds, obj.NilAD, "pipeline needs ≥1 stage")
	}
	var ports []obj.AD
	for i := 0; i <= stages; i++ {
		p, f := sys.Ports.Create(sys.Heap, capacity, port.FIFO)
		if f != nil {
			return nil, f
		}
		ports = append(ports, p)
	}
	result, f := sys.SROs.Create(sys.Heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		return nil, f
	}

	gen, f := domainFor(sys, []isa.Instr{
		isa.MovI(4, items),
		isa.MovI(5, 1),
		isa.MovI(2, 8),
		isa.MovI(3, 0),
		isa.Create(1, 0, 2),
		isa.Store(5, 1, 0),
		isa.MovI(6, 0),
		isa.Send(1, 2, 6),
		isa.AddI(5, 5, 1),
		isa.AddI(4, 4, ^uint32(0)),
		isa.BrNZ(4, 2),
		isa.Halt(),
	})
	if f != nil {
		return nil, f
	}
	xform, f := domainFor(sys, []isa.Instr{
		isa.MovI(4, items),
		isa.Recv(1, 2),
		isa.Load(0, 1, 0),
		isa.AddI(0, 0, 1),
		isa.Store(0, 1, 0),
		isa.MovI(6, 0),
		isa.Send(1, 3, 6),
		isa.AddI(4, 4, ^uint32(0)),
		isa.BrNZ(4, 1),
		isa.Halt(),
	})
	if f != nil {
		return nil, f
	}
	acc, f := domainFor(sys, []isa.Instr{
		isa.MovI(4, items),
		isa.MovI(5, 0),
		isa.Recv(1, 2),
		isa.Load(0, 1, 0),
		isa.Add(5, 5, 0),
		isa.AddI(4, 4, ^uint32(0)),
		isa.BrNZ(4, 2),
		isa.Store(5, 3, 0),
		isa.Halt(),
	})
	if f != nil {
		return nil, f
	}

	h := &Handle{Results: []obj.AD{result}}
	spawn := func(dom obj.AD, in, out obj.AD) *obj.Fault {
		p, f := sys.Spawn(dom, gdp.SpawnSpec{
			TimeSlice: slice,
			AArgs:     [4]obj.AD{sys.Heap, obj.NilAD, in, out},
		})
		if f != nil {
			return f
		}
		h.Procs = append(h.Procs, p)
		return nil
	}
	if f := spawn(gen, ports[0], obj.NilAD); f != nil {
		return nil, f
	}
	for i := 0; i < stages; i++ {
		var dom obj.AD
		var in, out obj.AD
		if i == stages-1 {
			dom, in, out = acc, ports[i], result
		} else {
			dom, in, out = xform, ports[i], ports[i+1]
		}
		if f := spawn(dom, in, out); f != nil {
			return nil, f
		}
	}
	return h, nil
}

// PipelineExpected reports the accumulator sum Pipeline should produce.
func PipelineExpected(stages int, items uint32) uint32 {
	// Sum 1..items, each item incremented once per transform stage
	// (the accumulator stage adds, not increments).
	return items*(items+1)/2 + items*uint32(stages-1)
}

// ForkJoin spawns a binary process tree of the given depth; each leaf
// spins for iters. It exercises process creation under load; the basic
// process manager's tree operations apply to the result.
func ForkJoin(sys *gdp.System, depth int, iters uint32, slice uint32) (*Handle, *obj.Fault) {
	if depth < 0 || depth > 8 {
		return nil, obj.Faultf(obj.FaultBounds, obj.NilAD, "depth %d outside 0..8", depth)
	}
	leafDom, f := domainFor(sys, []isa.Instr{
		isa.MovI(1, iters),
		isa.AddI(1, 1, ^uint32(0)),
		isa.BrNZ(1, 1),
		isa.Halt(),
	})
	if f != nil {
		return nil, f
	}
	h := &Handle{}
	var build func(parent obj.AD, d int) *obj.Fault
	build = func(parent obj.AD, d int) *obj.Fault {
		p, f := sys.Spawn(leafDom, gdp.SpawnSpec{TimeSlice: slice, Parent: parent})
		if f != nil {
			return f
		}
		h.Procs = append(h.Procs, p)
		if d == 0 {
			return nil
		}
		for c := 0; c < 2; c++ {
			if f := build(p, d-1); f != nil {
				return f
			}
		}
		return nil
	}
	if f := build(obj.NilAD, depth); f != nil {
		return nil, f
	}
	return h, nil
}

// Verify checks a pipeline handle's result against the expectation.
func (h *Handle) Verify(sys *gdp.System, stages int, items uint32) error {
	if len(h.Results) == 0 {
		return nil
	}
	got, f := sys.Table.ReadDWord(h.Results[0], 0)
	if f != nil {
		return f
	}
	want := PipelineExpected(stages, items)
	if got != want {
		return fmt.Errorf("workload: pipeline sum %d, want %d", got, want)
	}
	return nil
}
