package workload

import (
	"testing"

	"repro/internal/gdp"
	"repro/internal/obj"
)

func newSys(t *testing.T, cpus int) *gdp.System {
	t.Helper()
	sys, err := gdp.New(gdp.Config{Processors: cpus})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func runHandle(t *testing.T, sys *gdp.System, h *Handle) {
	t.Helper()
	if _, f := sys.Run(200_000_000); f != nil {
		t.Fatal(f)
	}
	if !h.Done(sys) {
		t.Fatal("workload incomplete")
	}
}

func TestComputeWorkload(t *testing.T) {
	sys := newSys(t, 2)
	h, f := Compute(sys, 6, 500, 2_000)
	if f != nil {
		t.Fatal(f)
	}
	if len(h.Procs) != 6 {
		t.Fatalf("spawned %d", len(h.Procs))
	}
	runHandle(t, sys, h)
}

func TestChurnWorkload(t *testing.T) {
	sys := newSys(t, 1)
	before := sys.Table.Live()
	h, f := Churn(sys, 2, 50, 64, 2_000)
	if f != nil {
		t.Fatal(f)
	}
	runHandle(t, sys, h)
	if sys.Table.Live() <= before {
		t.Fatal("churn allocated nothing")
	}
}

func TestPipelineWorkload(t *testing.T) {
	for _, stages := range []int{1, 2, 4} {
		sys := newSys(t, 2)
		const items = 20
		h, f := Pipeline(sys, stages, items, 4, 2_000)
		if f != nil {
			t.Fatal(f)
		}
		if len(h.Procs) != stages+1 { // generator + stages
			t.Fatalf("stages=%d: %d processes", stages, len(h.Procs))
		}
		runHandle(t, sys, h)
		if err := h.Verify(sys, stages, items); err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
	}
}

func TestPipelineExpected(t *testing.T) {
	// 1 stage = accumulator only: plain sum.
	if got := PipelineExpected(1, 10); got != 55 {
		t.Fatalf("1 stage: %d", got)
	}
	// 3 stages = 2 transforms (+1 each) + accumulator.
	if got := PipelineExpected(3, 10); got != 75 {
		t.Fatalf("3 stages: %d", got)
	}
}

func TestForkJoinWorkload(t *testing.T) {
	sys := newSys(t, 2)
	h, f := ForkJoin(sys, 3, 100, 2_000)
	if f != nil {
		t.Fatal(f)
	}
	// A depth-3 binary tree: 2^4 - 1 processes.
	if len(h.Procs) != 15 {
		t.Fatalf("tree size = %d", len(h.Procs))
	}
	runHandle(t, sys, h)
	// Parent links are in place for the process manager's tree walks.
	root := h.Procs[0]
	child := h.Procs[1]
	parent, f := sys.Procs.Link(child, 5 /* process.SlotParent */)
	if f != nil {
		t.Fatal(f)
	}
	if parent.Index != root.Index {
		t.Fatal("tree parentage wrong")
	}
	_ = obj.NilAD
}

func TestWorkloadValidation(t *testing.T) {
	sys := newSys(t, 1)
	if _, f := Pipeline(sys, 0, 1, 1, 0); !obj.IsFault(f, obj.FaultBounds) {
		t.Fatalf("0-stage pipeline: %v", f)
	}
	if _, f := ForkJoin(sys, 99, 1, 0); !obj.IsFault(f, obj.FaultBounds) {
		t.Fatalf("depth-99 tree: %v", f)
	}
}
