package workload

import (
	"repro/internal/gdp"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/vtime"
)

// ServerSpec describes the per-request program of one request-server
// class. A server is a resident VM process that loops forever: receive a
// session object from its class's request port, touch session state,
// burn a calibrated amount of compute, optionally cross protection
// domains, and send the session object on to the reply port. The scenario
// engine (internal/scenario) composes open-loop session mixes from these.
type ServerSpec struct {
	// Demand is the busy-spin iteration count per request — the pure
	// compute component of service time.
	Demand uint32
	// Touches is the number of session-object dwords read-modified-
	// written per request (offsets 0, 4, 8, …). Each completed request
	// increments each touched dword by exactly one, which makes session
	// bytes a deterministic witness of how many requests were served.
	Touches uint32
	// DomainCalls is the number of cross-domain call/return pairs per
	// request — the E1 domain-switch shape as a service-time component.
	DomainCalls uint32
}

// RequestCost estimates the virtual-cycle service demand of one request
// under the spec, for open-loop utilisation sizing. It mirrors the cost
// table applied by the interpreter; treat it as an estimate, not an
// accounting identity.
func (s ServerSpec) RequestCost() vtime.Cycles {
	c := vtime.CostReceive + vtime.CostSend + vtime.CostBranch
	c += vtime.Cycles(s.Touches) * (2*vtime.CostMove + vtime.CostALU)
	if s.Demand > 0 {
		c += vtime.CostALU + vtime.Cycles(s.Demand)*(vtime.CostALU+vtime.CostBranch)
	}
	c += vtime.Cycles(s.DomainCalls) * (vtime.CostDomainCall + vtime.CostDomainReturn)
	return c
}

// ServerProgram assembles the server loop. Register conventions (set by
// the spawner through SpawnSpec.AArgs): a0 holds the callee domain when
// DomainCalls > 0, a2 the class request port, a3 the shared reply port;
// a1 carries the in-flight session object between Recv and Send.
func ServerProgram(spec ServerSpec) []isa.Instr {
	var p []isa.Instr
	p = append(p, isa.MovI(6, 0)) // r6: constant send key
	loop := uint32(len(p))
	p = append(p, isa.Recv(1, 2))
	for t := uint32(0); t < spec.Touches; t++ {
		p = append(p,
			isa.Load(2, 1, t*4),
			isa.AddI(2, 2, 1),
			isa.Store(2, 1, t*4),
		)
	}
	if spec.Demand > 0 {
		p = append(p, isa.MovI(3, spec.Demand))
		spin := uint32(len(p))
		p = append(p, isa.AddI(3, 3, ^uint32(0)), isa.BrNZ(3, spin))
	}
	for i := uint32(0); i < spec.DomainCalls; i++ {
		p = append(p, isa.Call(0, 0))
	}
	p = append(p, isa.Send(1, 3, 6), isa.Br(loop))
	return p
}

// NewServerDomain assembles the server domain for the spec, plus the
// trivial callee domain for its cross-domain calls (NilAD when the spec
// makes none). Pass the callee in AArgs[0] at spawn.
func NewServerDomain(sys *gdp.System, spec ServerSpec) (dom, callee obj.AD, f *obj.Fault) {
	if spec.DomainCalls > 0 {
		callee, f = domainFor(sys, []isa.Instr{isa.Ret()})
		if f != nil {
			return obj.NilAD, obj.NilAD, f
		}
	}
	dom, f = domainFor(sys, ServerProgram(spec))
	if f != nil {
		return obj.NilAD, obj.NilAD, f
	}
	return dom, callee, nil
}
