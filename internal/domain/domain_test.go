package domain

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/sro"
)

type fixture struct {
	tab  *obj.Table
	sros *sro.Manager
	m    *Manager
	heap obj.AD
}

func setup(t *testing.T) *fixture {
	t.Helper()
	tab := obj.NewTable(1 << 20)
	s := sro.NewManager(tab)
	heap, f := s.NewGlobalHeap(0)
	if f != nil {
		t.Fatal(f)
	}
	return &fixture{tab: tab, sros: s, m: NewManager(tab, s), heap: heap}
}

func TestCreateCodeAndProgram(t *testing.T) {
	fx := setup(t)
	prog := []isa.Instr{isa.MovI(0, 5), isa.Halt()}
	code, f := fx.m.CreateCode(fx.heap, prog)
	if f != nil {
		t.Fatal(f)
	}
	got, f := fx.m.Program(code)
	if f != nil {
		t.Fatal(f)
	}
	if len(got) != 2 || got[0] != prog[0] || got[1] != prog[1] {
		t.Fatalf("Program = %v", got)
	}
	// Second fetch comes from the cache and must agree.
	again, f := fx.m.Program(code)
	if f != nil || len(again) != 2 {
		t.Fatalf("cached Program = %v, %v", again, f)
	}
}

func TestEmptyProgramRejected(t *testing.T) {
	fx := setup(t)
	if _, f := fx.m.CreateCode(fx.heap, nil); !obj.IsFault(f, obj.FaultBounds) {
		t.Fatalf("empty program: %v", f)
	}
}

func TestCreateDomainAndEntries(t *testing.T) {
	fx := setup(t)
	code, _ := fx.m.CreateCode(fx.heap, []isa.Instr{isa.Nop(), isa.Nop(), isa.Halt()})
	dom, f := fx.m.Create(fx.heap, code, []uint32{0, 2})
	if f != nil {
		t.Fatal(f)
	}
	if native, _ := fx.m.IsNative(dom); native {
		t.Error("VM domain claims native")
	}
	if ip, _ := fx.m.EntryIP(dom, 0); ip != 0 {
		t.Errorf("entry 0 = %d", ip)
	}
	if ip, _ := fx.m.EntryIP(dom, 1); ip != 2 {
		t.Errorf("entry 1 = %d", ip)
	}
	if _, f := fx.m.EntryIP(dom, 2); !obj.IsFault(f, obj.FaultBounds) {
		t.Errorf("entry 2: %v", f)
	}
	gotCode, _ := fx.m.Code(dom)
	if gotCode.Index != code.Index {
		t.Error("Code mismatch")
	}
}

func TestCreateDomainValidation(t *testing.T) {
	fx := setup(t)
	notCode, _ := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 16})
	if _, f := fx.m.Create(fx.heap, notCode, []uint32{0}); !obj.IsFault(f, obj.FaultType) {
		t.Errorf("non-code object: %v", f)
	}
	code, _ := fx.m.CreateCode(fx.heap, []isa.Instr{isa.Halt()})
	if _, f := fx.m.Create(fx.heap, code, nil); !obj.IsFault(f, obj.FaultBounds) {
		t.Errorf("no entries: %v", f)
	}
	if _, f := fx.m.Create(fx.heap, code, make([]uint32, MaxEntries+1)); !obj.IsFault(f, obj.FaultBounds) {
		t.Errorf("too many entries: %v", f)
	}
}

func TestNativeDomain(t *testing.T) {
	fx := setup(t)
	called := uint32(0)
	dom, f := fx.m.CreateNative(fx.heap, 2, func(env *Env, entry uint32) *obj.Fault {
		called = entry + 1
		return nil
	})
	if f != nil {
		t.Fatal(f)
	}
	if native, _ := fx.m.IsNative(dom); !native {
		t.Fatal("native domain not flagged")
	}
	h, f := fx.m.HandlerOf(dom)
	if f != nil {
		t.Fatal(f)
	}
	if f := h(nil, 1); f != nil {
		t.Fatal(f)
	}
	if called != 2 {
		t.Fatalf("handler not invoked correctly: %d", called)
	}
	if _, f := fx.m.CreateNative(fx.heap, 1, nil); !obj.IsFault(f, obj.FaultInvalidAD) {
		t.Errorf("nil handler: %v", f)
	}
}

func TestHandlerRegistrationGenerationGuard(t *testing.T) {
	// A recycled table slot must not inherit a stale handler.
	fx := setup(t)
	dom, _ := fx.m.CreateNative(fx.heap, 1, func(*Env, uint32) *obj.Fault { return nil })
	if f := fx.sros.Reclaim(dom.Index); f != nil {
		t.Fatal(f)
	}
	// Recreate an object in (likely) the same slot.
	other, _ := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeDomain, DataLen: domainData, AccessSlots: domainSlots})
	if other.Index == dom.Index {
		if _, f := fx.m.HandlerOf(other); !obj.IsFault(f, obj.FaultOddity) {
			t.Fatalf("stale handler served for recycled slot: %v", f)
		}
	}
}

func TestPrivateSlots(t *testing.T) {
	fx := setup(t)
	dom, _ := fx.m.CreateNative(fx.heap, 1, func(*Env, uint32) *obj.Fault { return nil })
	secret, _ := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f := fx.m.SetPrivate(dom, 0, secret); f != nil {
		t.Fatal(f)
	}
	got, f := fx.m.Private(dom, 0)
	if f != nil || got.Index != secret.Index {
		t.Fatalf("Private = %v, %v", got, f)
	}
	if f := fx.m.SetPrivate(dom, 99, secret); !obj.IsFault(f, obj.FaultBounds) {
		t.Errorf("private slot 99: %v", f)
	}
	if _, f := fx.m.Private(dom, 99); !obj.IsFault(f, obj.FaultBounds) {
		t.Errorf("read private slot 99: %v", f)
	}
}

func TestProgramCacheInvalidatedByGeneration(t *testing.T) {
	fx := setup(t)
	code, _ := fx.m.CreateCode(fx.heap, []isa.Instr{isa.Halt()})
	if _, f := fx.m.Program(code); f != nil {
		t.Fatal(f)
	}
	if f := fx.sros.Reclaim(code.Index); f != nil {
		t.Fatal(f)
	}
	// New code object, possibly same slot, different program.
	code2, _ := fx.m.CreateCode(fx.heap, []isa.Instr{isa.Nop(), isa.Halt()})
	prog, f := fx.m.Program(code2)
	if f != nil {
		t.Fatal(f)
	}
	if len(prog) != 2 {
		t.Fatalf("stale cached program served: %v", prog)
	}
	// The dangling capability must not resolve at all.
	if _, f := fx.m.Program(code); !obj.IsFault(f, obj.FaultInvalidAD) {
		t.Fatalf("dangling code AD: %v", f)
	}
}
