// Package domain implements the 432's domain objects: small protection
// domains corresponding to the Ada package construct (§2 of the paper) —
// "a structure for grouping and restricting accesses to the implementation
// of a module. The 432 subprogram call instruction performs the dynamic
// transition between domains."
//
// A domain bundles a code object with an entry-point table and up to a few
// private objects only reachable through the domain. Crucially for the
// paper's §4 argument, a domain's body may be either VM code or a native
// Go handler, and the caller cannot tell which: "users can be unaware of
// which operations have been implemented in hardware and which have been
// left to software." Native domains are how iMAX's own packages (process
// manager, memory manager, I/O) appear in the object world, and they model
// the paper's "packages as types" extension — one specification, many
// coexisting implementations, dynamically created instances.
package domain

import (
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/process"
	"repro/internal/sro"
	"repro/internal/vtime"
)

// RightCall on a domain capability permits invoking its entry points.
const RightCall = obj.RightT1

// MaxEntries bounds a domain's entry-point table.
const MaxEntries = 64

// Domain data-part layout.
const (
	offFlags      = 0 // word: bit0 = native
	offEntryCount = 2 // word
	offEntries    = 4 // entryCount × dword instruction indexes
	domainData    = offEntries + MaxEntries*4

	flagNative = 1 << 0
)

// Domain access-part slots.
const (
	slotCode = 0 // instruction object (VM domains)
	// SlotPrivate0 starts the domain's private objects: the state its
	// package body encapsulates (a type manager's TDO, a driver's
	// device object, ...).
	SlotPrivate0 = 1
	domainSlots  = 1 + 4
)

// Env is the execution environment a native handler receives: the calling
// process, the fresh context of the call (whose registers carry the
// arguments and will carry the results), and the clock to charge for the
// work performed. Handlers run at iMAX's inner levels (§7.3) and therefore
// must not block and must not fault in normal operation: they return
// faults only for caller errors, which are delivered to the caller.
type Env struct {
	Table *obj.Table
	Procs *process.Manager
	Proc  obj.AD // calling process
	Ctx   obj.AD // context of this call: args in r0..r3/a0..a3
	Clock *vtime.Clock
}

// Handler is a native domain body. Entry selects the entry point, matching
// the entry indexes a VM domain would dispatch through.
type Handler func(env *Env, entry uint32) *obj.Fault

// Manager provides domain operations over an object table.
type Manager struct {
	Table *obj.Table
	SRO   *sro.Manager

	// handlers maps native domain objects to their Go bodies. Keyed by
	// table index and guarded by generation at lookup so a stale
	// registration can never run for a recycled slot.
	handlers map[obj.Index]nativeReg
	// programs caches decoded code images.
	programs map[progKey][]isa.Instr
	// base, when non-nil, marks this manager as an epoch-fork view (see
	// NewEpochManager): base's program cache is consulted read-only
	// before decoding, and entries decoded here stay epoch-local until
	// MergeEpochCache publishes them at commit.
	base *Manager
}

type nativeReg struct {
	gen     uint32
	handler Handler
}

type progKey struct {
	idx obj.Index
	gen uint32
}

// NewManager returns a domain manager.
func NewManager(t *obj.Table, s *sro.Manager) *Manager {
	return &Manager{
		Table:    t,
		SRO:      s,
		handlers: make(map[obj.Index]nativeReg),
		programs: make(map[progKey][]isa.Instr),
	}
}

// NewEpochManager returns a manager over an epoch-fork table for the
// parallel host backend (internal/gdp). It shares base's native-handler
// registry (registration happens outside epochs) and layers an epoch-local
// program cache over base's: decodes performed during speculation stay
// private until the epoch commits, so an aborted epoch cannot leak a
// decode of state that serial replay would see differently.
func NewEpochManager(t *obj.Table, s *sro.Manager, base *Manager) *Manager {
	return &Manager{
		Table:    t,
		SRO:      s,
		handlers: base.handlers,
		programs: make(map[progKey][]isa.Instr),
		base:     base,
	}
}

// ResetEpochCache discards decodes from the previous epoch. The driver
// calls it at each epoch start; entries from aborted epochs must not
// survive, since the bytes they were decoded from may since have changed.
func (m *Manager) ResetEpochCache() {
	clear(m.programs)
}

// MergeEpochCache publishes this epoch's decodes into the committed
// manager's cache. Only called for committing epochs: the no-conflict rule
// guarantees the decoded bytes equal what a serial run would have read.
func (m *Manager) MergeEpochCache(into *Manager) {
	for k, v := range m.programs {
		into.programs[k] = v
	}
}

// CreateCode stores a program in a new instruction object.
func (m *Manager) CreateCode(heap obj.AD, prog []isa.Instr) (obj.AD, *obj.Fault) {
	img := isa.EncodeProgram(prog)
	if len(img) == 0 {
		return obj.NilAD, obj.Faultf(obj.FaultBounds, obj.NilAD, "empty program")
	}
	code, f := m.SRO.Create(heap, obj.CreateSpec{
		Type:    obj.TypeInstruction,
		DataLen: uint32(len(img)),
	})
	if f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.WriteBytes(code, 0, img); f != nil {
		return obj.NilAD, f
	}
	return code, nil
}

// Program returns the decoded program of an instruction object, cached by
// identity (index and generation), so repeated fetches cost nothing.
func (m *Manager) Program(code obj.AD) ([]isa.Instr, *obj.Fault) {
	d, f := m.Table.RequireType(code, obj.TypeInstruction)
	if f != nil {
		return nil, f
	}
	key := progKey{code.Index, d.Gen}
	if prog, ok := m.programs[key]; ok {
		return prog, nil
	}
	if m.base != nil {
		// Epoch fork: the committed cache is read-only here (the epoch
		// driver only mutates it between epochs).
		if prog, ok := m.base.programs[key]; ok {
			return prog, nil
		}
	}
	img, f := m.Table.ReadBytes(code, 0, d.DataLen)
	if f != nil {
		return nil, f
	}
	prog, err := isa.DecodeProgram(img)
	if err != nil {
		return nil, obj.Faultf(obj.FaultOddity, code, "%v", err)
	}
	m.programs[key] = prog
	return prog, nil
}

// Create makes a VM domain over the given code object. entries lists the
// instruction index of each entry point; entry 0 is the default.
func (m *Manager) Create(heap obj.AD, code obj.AD, entries []uint32) (obj.AD, *obj.Fault) {
	if _, f := m.Table.RequireType(code, obj.TypeInstruction); f != nil {
		return obj.NilAD, f
	}
	dom, f := m.create(heap, entries, 0)
	if f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.StoreAD(dom, slotCode, code); f != nil {
		return obj.NilAD, f
	}
	return dom, nil
}

// CreateNative makes a domain whose body is the Go handler. Each call to
// CreateNative yields a distinct domain instance — multiple instances of
// one "package" may coexist, each with its own private objects, which is
// exactly the dynamic-package-creation extension of §6.3.
func (m *Manager) CreateNative(heap obj.AD, entryCount int, h Handler) (obj.AD, *obj.Fault) {
	if h == nil {
		return obj.NilAD, obj.Faultf(obj.FaultInvalidAD, obj.NilAD, "nil handler")
	}
	entries := make([]uint32, entryCount)
	dom, f := m.create(heap, entries, flagNative)
	if f != nil {
		return obj.NilAD, f
	}
	d := m.Table.DescriptorAt(dom.Index)
	m.handlers[dom.Index] = nativeReg{gen: d.Gen, handler: h}
	return dom, nil
}

func (m *Manager) create(heap obj.AD, entries []uint32, flags uint16) (obj.AD, *obj.Fault) {
	if len(entries) == 0 || len(entries) > MaxEntries {
		return obj.NilAD, obj.Faultf(obj.FaultBounds, obj.NilAD,
			"%d entry points outside 1..%d", len(entries), MaxEntries)
	}
	dom, f := m.SRO.Create(heap, obj.CreateSpec{
		Type:        obj.TypeDomain,
		DataLen:     domainData,
		AccessSlots: domainSlots,
	})
	if f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.WriteWord(dom, offFlags, flags); f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.WriteWord(dom, offEntryCount, uint16(len(entries))); f != nil {
		return obj.NilAD, f
	}
	for i, e := range entries {
		if f := m.Table.WriteDWord(dom, offEntries+uint32(i)*4, e); f != nil {
			return obj.NilAD, f
		}
	}
	return dom, nil
}

// IsNative reports whether the domain's body is a Go handler.
func (m *Manager) IsNative(dom obj.AD) (bool, *obj.Fault) {
	if _, f := m.Table.RequireType(dom, obj.TypeDomain); f != nil {
		return false, f
	}
	flags, f := m.Table.ReadWord(dom, offFlags)
	if f != nil {
		return false, f
	}
	return flags&flagNative != 0, nil
}

// HandlerOf returns the native body of a domain.
func (m *Manager) HandlerOf(dom obj.AD) (Handler, *obj.Fault) {
	d, f := m.Table.RequireType(dom, obj.TypeDomain)
	if f != nil {
		return nil, f
	}
	reg, ok := m.handlers[dom.Index]
	if !ok || reg.gen != d.Gen {
		return nil, obj.Faultf(obj.FaultOddity, dom, "native domain has no registered body")
	}
	return reg.handler, nil
}

// EntryIP reports the instruction index of entry point entry.
func (m *Manager) EntryIP(dom obj.AD, entry uint32) (uint32, *obj.Fault) {
	if _, f := m.Table.RequireType(dom, obj.TypeDomain); f != nil {
		return 0, f
	}
	n, f := m.Table.ReadWord(dom, offEntryCount)
	if f != nil {
		return 0, f
	}
	if entry >= uint32(n) {
		return 0, obj.Faultf(obj.FaultBounds, dom, "entry %d of %d", entry, n)
	}
	return m.Table.ReadDWord(dom, offEntries+entry*4)
}

// Code reports the domain's instruction object.
func (m *Manager) Code(dom obj.AD) (obj.AD, *obj.Fault) {
	if _, f := m.Table.RequireType(dom, obj.TypeDomain); f != nil {
		return obj.NilAD, f
	}
	return m.Table.LoadAD(dom, slotCode)
}

// SetPrivate stores an object into one of the domain's private slots; only
// code executing within the domain can reach it afterwards.
func (m *Manager) SetPrivate(dom obj.AD, n uint32, ad obj.AD) *obj.Fault {
	if _, f := m.Table.RequireType(dom, obj.TypeDomain); f != nil {
		return f
	}
	if SlotPrivate0+n >= domainSlots {
		return obj.Faultf(obj.FaultBounds, dom, "private slot %d", n)
	}
	return m.Table.StoreAD(dom, SlotPrivate0+n, ad)
}

// Private loads one of the domain's private objects.
func (m *Manager) Private(dom obj.AD, n uint32) (obj.AD, *obj.Fault) {
	if _, f := m.Table.RequireType(dom, obj.TypeDomain); f != nil {
		return obj.NilAD, f
	}
	if SlotPrivate0+n >= domainSlots {
		return obj.NilAD, obj.Faultf(obj.FaultBounds, dom, "private slot %d", n)
	}
	return m.Table.LoadAD(dom, SlotPrivate0+n)
}
