package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	m := New(1024)
	e, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len != 100 {
		t.Fatalf("Len = %d, want 100", e.Len)
	}
	if m.Used() != 100 || m.FreeBytes() != 924 {
		t.Fatalf("Used=%d Free=%d", m.Used(), m.FreeBytes())
	}
}

func TestAllocZeroIsOneByte(t *testing.T) {
	// §2: segments are from 1 byte; a zero-size request still yields a
	// distinct 1-byte segment.
	m := New(16)
	e, err := m.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Len != 1 {
		t.Fatalf("Len = %d, want 1", e.Len)
	}
}

func TestAllocTooLarge(t *testing.T) {
	m := New(MaxSegment * 2)
	if _, err := m.Alloc(MaxSegment + 1); !errors.Is(err, ErrSegTooLarge) {
		t.Fatalf("err = %v, want ErrSegTooLarge", err)
	}
	if _, err := m.Alloc(MaxSegment); err != nil {
		t.Fatalf("exactly MaxSegment should allocate: %v", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := New(256)
	if _, err := m.Alloc(200); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(100); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("err = %v, want ErrNoMemory", err)
	}
	// But 56 bytes remain allocatable.
	if _, err := m.Alloc(56); err != nil {
		t.Fatal(err)
	}
}

func TestFreeCoalesce(t *testing.T) {
	m := New(300)
	a, _ := m.Alloc(100)
	b, _ := m.Alloc(100)
	c, _ := m.Alloc(100)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(c); err != nil {
		t.Fatal(err)
	}
	if m.FragCount() != 2 {
		t.Fatalf("FragCount = %d, want 2", m.FragCount())
	}
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
	// a+b+c coalesce back into the single original extent.
	if m.FragCount() != 1 {
		t.Fatalf("FragCount = %d, want 1", m.FragCount())
	}
	if m.LargestFree() != 300 {
		t.Fatalf("LargestFree = %d, want 300", m.LargestFree())
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	m := New(128)
	a, _ := m.Alloc(64)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("double free: err = %v, want ErrNotOwned", err)
	}
}

func TestFreeOutOfRange(t *testing.T) {
	m := New(128)
	if err := m.Free(Extent{Base: 1000, Len: 10}); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("err = %v, want ErrNotOwned", err)
	}
}

func TestFreshSegmentZeroed(t *testing.T) {
	// A new object must not leak a previous object's contents.
	m := New(64)
	a, _ := m.Alloc(64)
	for i := uint32(0); i < 64; i++ {
		if err := m.WriteByteAt(a, i, 0xAA); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := m.Alloc(64)
	for i := uint32(0); i < 64; i++ {
		v, err := m.ReadByteAt(b, i)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("byte %d = %#x after realloc, want 0", i, v)
		}
	}
}

func TestBoundsChecks(t *testing.T) {
	m := New(64)
	e, _ := m.Alloc(8)
	if _, err := m.ReadByteAt(e, 8); !errors.Is(err, ErrBadSegment) {
		t.Errorf("ReadByteAt past end: %v", err)
	}
	if err := m.WriteWord(e, 7, 1); !errors.Is(err, ErrBadSegment) {
		t.Errorf("WriteWord straddling end: %v", err)
	}
	if _, err := m.ReadDWord(e, 5); !errors.Is(err, ErrBadSegment) {
		t.Errorf("ReadDWord straddling end: %v", err)
	}
	// Offset overflow must not wrap.
	if _, err := m.ReadBytes(e, ^uint32(0), 2); !errors.Is(err, ErrBadSegment) {
		t.Errorf("overflowing offset: %v", err)
	}
}

func TestWordRoundTrip(t *testing.T) {
	m := New(64)
	e, _ := m.Alloc(16)
	if err := m.WriteWord(e, 2, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadWord(e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xBEEF {
		t.Fatalf("ReadWord = %#x", v)
	}
	if err := m.WriteDWord(e, 8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	d, err := m.ReadDWord(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0xDEADBEEF {
		t.Fatalf("ReadDWord = %#x", d)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	m := New(64)
	e, _ := m.Alloc(32)
	in := []byte("the 432 blurs hw and sw")
	if err := m.WriteBytes(e, 3, in); err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadBytes(e, 3, uint32(len(in)))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(in) {
		t.Fatalf("round trip = %q", out)
	}
}

func TestMove(t *testing.T) {
	m := New(256)
	a, _ := m.Alloc(32)
	if err := m.WriteBytes(a, 0, []byte("swapped segment")); err != nil {
		t.Fatal(err)
	}
	b, err := m.Move(a)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.ReadBytes(b, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "swapped segment" {
		t.Fatalf("after Move: %q", out)
	}
	// The source extent must be free again (freeing it is an error).
	if err := m.Free(a); err == nil {
		t.Fatal("source extent still allocated after Move")
	}
	if m.Used() != 32 {
		t.Fatalf("Used = %d, want 32", m.Used())
	}
}

// TestAllocFreeInvariant property-checks the central bookkeeping invariant:
// after any interleaving of allocs and frees, used+free bytes equals the
// memory size and no two free extents overlap or abut.
func TestAllocFreeInvariant(t *testing.T) {
	f := func(sizes []uint16, freeMask []bool) bool {
		m := New(1 << 16)
		var live []Extent
		for _, s := range sizes {
			e, err := m.Alloc(uint32(s%2048) + 1)
			if err != nil {
				continue
			}
			live = append(live, e)
		}
		for i, e := range live {
			if i < len(freeMask) && freeMask[i] {
				if err := m.Free(e); err != nil {
					return false
				}
			}
		}
		// Invariant 1: conservation of bytes.
		var free uint32
		for _, e := range m.free {
			free += e.Len
		}
		if free+m.Used() != m.Size() {
			return false
		}
		// Invariant 2: free list sorted, disjoint, coalesced.
		for i := 1; i < len(m.free); i++ {
			if m.free[i-1].End() >= m.free[i].Base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
