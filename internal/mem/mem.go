// Package mem models the physical memory of the simulated 432 system: a
// single homogeneous address space shared by all processors (§3 of the
// paper: "a tightly coupled environment in which all processors see a single
// homogeneous memory").
//
// Memory is carved into segments of 1 byte to 128 KB (§2). The object layer
// (internal/obj) maps object descriptors onto segments; this package only
// knows about raw extents and free-space bookkeeping, which the storage
// resource objects (internal/sro) draw from.
package mem

import (
	"errors"
	"fmt"
	"sort"
)

// Architecture limits from §2 of the paper.
const (
	// MaxSegment is the largest segment an object descriptor can
	// describe: 128 KB.
	MaxSegment = 128 * 1024
	// MaxPart is the largest data or access part of an object: 64 KB.
	MaxPart = 64 * 1024
)

// Addr is a physical byte address.
type Addr uint32

// Errors reported by the memory subsystem.
var (
	ErrNoMemory    = errors.New("mem: insufficient free storage")
	ErrBadSegment  = errors.New("mem: segment bounds violation")
	ErrSegTooLarge = fmt.Errorf("mem: segment exceeds %d bytes", MaxSegment)
	ErrNotOwned    = errors.New("mem: extent not allocated from this memory")
)

// Extent is a contiguous physical region [Base, Base+Len).
type Extent struct {
	Base Addr
	Len  uint32
}

// End returns the address one past the extent.
func (e Extent) End() Addr { return e.Base + Addr(e.Len) }

// Memory is the physical store. All mutation goes through Alloc/Free and
// the bounds-checked Read*/Write* accessors; processors never hold raw
// slices into it, mirroring the 432 rule that all addressing is via object
// descriptors.
//
// Memory is not safe for concurrent use; the lock-step processor driver
// (internal/gdp) serialises access, exactly as the single shared bus of the
// real machine did.
type Memory struct {
	data []byte
	free []Extent // sorted by Base, coalesced
	used uint32

	// muts counts external mutations (writes, allocation, freeing) on a
	// non-fork memory. The parallel driver snapshots it to detect state
	// changes made outside the epoch engine — epoch-fork commits
	// deliberately do not bump it, because the driver accounts for its
	// own committed writes separately.
	muts uint64

	// fk marks this Memory as an epoch-fork view (see fork.go): reads
	// and writes are routed through a copy-on-write shadow and recorded
	// as footprints, and structural operations abort the fork.
	fk *memFork
}

// New creates a physical memory of the given size in bytes.
func New(size uint32) *Memory {
	return &Memory{
		data: make([]byte, size),
		free: []Extent{{Base: 0, Len: size}},
	}
}

// Size reports the total physical size in bytes.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Used reports the number of allocated bytes.
func (m *Memory) Used() uint32 { return m.used }

// FreeBytes reports the number of unallocated bytes.
func (m *Memory) FreeBytes() uint32 { return m.Size() - m.used }

// LargestFree reports the size of the largest free extent; allocation of
// any larger segment will fail even if total free space suffices
// (external fragmentation).
func (m *Memory) LargestFree() uint32 {
	var max uint32
	for _, e := range m.free {
		if e.Len > max {
			max = e.Len
		}
	}
	return max
}

// FragCount reports the number of disjoint free extents, a direct measure
// of external fragmentation used by the E2/E9 experiments.
func (m *Memory) FragCount() int { return len(m.free) }

// MutGen reports a counter that advances on every mutation performed
// outside the epoch-fork engine: byte writes, allocation, freeing,
// relocation. Fork commits do not advance it.
func (m *Memory) MutGen() uint64 { return m.muts }

// Alloc carves a segment of n bytes from physical memory using first-fit,
// the policy simple enough to microcode (the 432 performed allocation in
// the create-object instruction, so the policy had to be trivial).
func (m *Memory) Alloc(n uint32) (Extent, error) {
	if m.fk != nil {
		// Allocation order is part of serial semantics (first-fit over
		// the live free list); a fork cannot reproduce it speculatively.
		m.fk.abort = true
		return Extent{}, ErrNoMemory
	}
	if n == 0 {
		n = 1 // §2: segments are from 1 byte
	}
	if n > MaxSegment {
		return Extent{}, ErrSegTooLarge
	}
	for i, e := range m.free {
		if e.Len < n {
			continue
		}
		got := Extent{Base: e.Base, Len: n}
		if e.Len == n {
			m.free = append(m.free[:i], m.free[i+1:]...)
		} else {
			m.free[i] = Extent{Base: e.Base + Addr(n), Len: e.Len - n}
		}
		m.used += n
		m.muts++
		// The hardware zeroed fresh segments: a new object must not
		// leak a previous object's contents through a fresh
		// capability.
		clear(m.data[got.Base:got.End()])
		return got, nil
	}
	return Extent{}, ErrNoMemory
}

// Free returns an extent to the free pool, coalescing with neighbours.
// Freeing an extent that was not allocated (or double-freeing) is an error:
// on the real machine only the microcode and the collector could reach this
// path, so corruption here meant a hardware fault.
func (m *Memory) Free(e Extent) error {
	if m.fk != nil {
		m.fk.abort = true
		return ErrNotOwned
	}
	if e.Len == 0 {
		return nil
	}
	if e.End() > Addr(m.Size()) || e.End() < e.Base {
		return ErrNotOwned
	}
	// Find insertion point in the sorted free list.
	i := sort.Search(len(m.free), func(i int) bool { return m.free[i].Base >= e.Base })
	// Overlap checks against predecessor and successor detect double
	// frees.
	if i > 0 && m.free[i-1].End() > e.Base {
		return fmt.Errorf("%w: overlaps free extent at %d", ErrNotOwned, m.free[i-1].Base)
	}
	if i < len(m.free) && e.End() > m.free[i].Base {
		return fmt.Errorf("%w: overlaps free extent at %d", ErrNotOwned, m.free[i].Base)
	}
	m.free = append(m.free, Extent{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = e
	m.used -= e.Len
	m.muts++
	m.coalesce(i)
	return nil
}

// coalesce merges the free extent at index i with adjacent extents.
func (m *Memory) coalesce(i int) {
	// Merge with successor first so index i stays valid.
	if i+1 < len(m.free) && m.free[i].End() == m.free[i+1].Base {
		m.free[i].Len += m.free[i+1].Len
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	if i > 0 && m.free[i-1].End() == m.free[i].Base {
		m.free[i-1].Len += m.free[i].Len
		m.free = append(m.free[:i], m.free[i+1:]...)
	}
}

// check validates that [off, off+n) lies inside e.
func (m *Memory) check(e Extent, off, n uint32) error {
	if off+n < off || off+n > e.Len || e.End() > Addr(m.Size()) {
		return fmt.Errorf("%w: [%d,%d) in segment of %d bytes", ErrBadSegment, off, off+n, e.Len)
	}
	return nil
}

// ReadByteAt reads one byte at offset off within extent e.
func (m *Memory) ReadByteAt(e Extent, off uint32) (byte, error) {
	if err := m.check(e, off, 1); err != nil {
		return 0, err
	}
	b := e.Base + Addr(off)
	return m.ro(b, 1)[b], nil
}

// WriteByteAt writes one byte at offset off within extent e.
func (m *Memory) WriteByteAt(e Extent, off uint32, v byte) error {
	if err := m.check(e, off, 1); err != nil {
		return err
	}
	b := e.Base + Addr(off)
	m.rw(b, 1)[b] = v
	return nil
}

// ReadWord reads a 16-bit "ordinal" (the 432's natural data unit) in
// little-endian order at offset off.
func (m *Memory) ReadWord(e Extent, off uint32) (uint16, error) {
	if err := m.check(e, off, 2); err != nil {
		return 0, err
	}
	b := e.Base + Addr(off)
	d := m.ro(b, 2)
	return uint16(d[b]) | uint16(d[b+1])<<8, nil
}

// WriteWord writes a 16-bit ordinal at offset off.
func (m *Memory) WriteWord(e Extent, off uint32, v uint16) error {
	if err := m.check(e, off, 2); err != nil {
		return err
	}
	b := e.Base + Addr(off)
	d := m.rw(b, 2)
	d[b] = byte(v)
	d[b+1] = byte(v >> 8)
	return nil
}

// ReadDWord reads a 32-bit value at offset off.
func (m *Memory) ReadDWord(e Extent, off uint32) (uint32, error) {
	if err := m.check(e, off, 4); err != nil {
		return 0, err
	}
	b := e.Base + Addr(off)
	d := m.ro(b, 4)
	return uint32(d[b]) | uint32(d[b+1])<<8 |
		uint32(d[b+2])<<16 | uint32(d[b+3])<<24, nil
}

// WriteDWord writes a 32-bit value at offset off.
func (m *Memory) WriteDWord(e Extent, off uint32, v uint32) error {
	if err := m.check(e, off, 4); err != nil {
		return err
	}
	b := e.Base + Addr(off)
	d := m.rw(b, 4)
	d[b] = byte(v)
	d[b+1] = byte(v >> 8)
	d[b+2] = byte(v >> 16)
	d[b+3] = byte(v >> 24)
	return nil
}

// ReadBytes copies n bytes starting at offset off into a fresh slice.
func (m *Memory) ReadBytes(e Extent, off, n uint32) ([]byte, error) {
	if err := m.check(e, off, n); err != nil {
		return nil, err
	}
	b := e.Base + Addr(off)
	out := make([]byte, n)
	copy(out, m.ro(b, n)[b:])
	return out, nil
}

// WriteBytes copies p into the segment starting at offset off.
func (m *Memory) WriteBytes(e Extent, off uint32, p []byte) error {
	if err := m.check(e, off, uint32(len(p))); err != nil {
		return err
	}
	b := e.Base + Addr(off)
	copy(m.rw(b, uint32(len(p)))[b:], p)
	return nil
}

// Window returns a direct byte view over extent e, for the interpreter's
// execution cache. It is the one sanctioned exception to the "no raw
// slices" rule above, and it is safe only because the backing array is
// allocated once in New and never reallocated: the view stays valid until
// the extent itself is freed or moved, which the object layer signals
// through its cache generation. Bad extents get nil.
//
// On an epoch fork the view is over the fork's shadow image (also
// allocated once, in Fork, and address-stable across epochs): the whole
// extent is touched — copied from the parent and recorded in the read
// footprint — so reads through the window are indistinguishable from reads
// through ro. Writes through a fork window MUST be reported with
// MarkForkWrite, or they are invisible to conflict detection and lost at
// commit.
func (m *Memory) Window(e Extent) []byte {
	if e.End() < e.Base || e.End() > Addr(len(m.data)) {
		return nil
	}
	if fk := m.fk; fk != nil {
		fk.touch(e.Base, e.Len, false)
		return fk.shadow[e.Base:e.End():e.End()]
	}
	return m.data[e.Base:e.End():e.End()]
}

// MarkForkWrite records [b, b+n) in the fork's write footprint, for
// callers that write through a Window instead of through rw. The span is
// touched exactly as a rw access would touch it; on a non-fork Memory this
// is a no-op (window writes to live memory are coherent by aliasing).
func (m *Memory) MarkForkWrite(b Addr, n uint32) {
	if m.fk != nil {
		m.fk.touch(b, n, true)
	}
}

// Move relocates the contents of src into a freshly allocated extent and
// frees src. The swapping memory manager and a compacting collector use
// this; user processes never observe it except as a segment fault (§7.3).
func (m *Memory) Move(src Extent) (Extent, error) {
	dst, err := m.Alloc(src.Len)
	if err != nil {
		return Extent{}, err
	}
	copy(m.data[dst.Base:dst.End()], m.data[src.Base:src.End()])
	if err := m.Free(src); err != nil {
		// src was bad; undo the allocation.
		_ = m.Free(dst)
		return Extent{}, err
	}
	return dst, nil
}
