package mem

// Epoch forks: copy-on-write views of physical memory for the parallel
// host backend of the multiprocessor driver (internal/gdp).
//
// During one speculative epoch every simulated processor runs against its
// own fork. A fork never mutates its parent: the first touch of a 256-byte
// page copies that page into the fork's shadow image, and all subsequent
// reads and writes land in the shadow. The fork records which pages it
// read and which it wrote; the driver intersects those footprints across
// processors to decide whether the epoch can commit (writes copied back to
// the parent, in canonical processor order) or must be discarded and
// replayed serially.
//
// Structural operations — Alloc, Free, Move — change the free list, which
// cannot be speculated without renumbering allocations; a fork refuses
// them and marks itself aborted, which the driver turns into a serial
// replay of the whole epoch.
//
// Pipelining splits the old single epoch stamp in two. The *chain* stamp
// says "this shadow page holds bytes copied from the parent at the start
// of the current fork chain"; the *epoch* stamp says "this page's
// footprint bits belong to the current epoch". ForkReset bumps both (a
// fresh fork chain); ForkStash bumps only the epoch — the shadow pages
// stay valid, carrying epoch k's values into the speculative epoch k+1
// that the same fork continues into while k awaits its commit ticket.
// The stash itself value-snapshots k's footprint and written-page images,
// because the continuation overwrites the shadow in place.

import "math/bits"

const (
	forkPageShift = 8
	forkPageSize  = 1 << forkPageShift
)

// PageBits is a byte-granular footprint bitmap for one page: bit i set
// means byte i of the page was touched. Pages are the index granularity;
// bytes are the conflict granularity — first-fit allocation packs unrelated
// objects into adjacent bytes, so page-level conflict detection would see
// false sharing on nearly every epoch boundary page.
type PageBits [forkPageSize / 64]uint64

func (b *PageBits) setRange(lo, hi uint32) { // [lo, hi) within the page
	for i := lo; i < hi; i++ {
		b[i>>6] |= 1 << (i & 63)
	}
}

type memFork struct {
	parent    *Memory
	shadow    []byte   // full-size shadow image; valid only where chain-stamped
	copied    []uint32 // chain stamp: shadow[p] copied from parent this chain
	bitS      []uint32 // epoch stamp: readBits/writeBits[p] belong to this epoch
	readS     []uint32
	writeS    []uint32
	readBits  []PageBits // per page, valid only where bitS matches the epoch
	writeBits []PageBits
	reads     []uint32 // pages first read this epoch
	writes    []uint32 // pages first written this epoch
	chain     uint32
	epoch     uint32
	abort     bool

	// Stash of the previous epoch, held while the fork speculates ahead.
	// stReadBits/stWriteBits parallel stReads/stWrites; stImage holds one
	// forkPageSize block per stashed written page.
	stReads     []uint32
	stWrites    []uint32
	stReadBits  []PageBits
	stWriteBits []PageBits
	stImage     []byte
	stashed     bool
}

// Fork returns an epoch-fork view of m. The fork shares m's backing bytes
// read-only and shadows every page it touches; see the package notes at
// the top of this file. Call ForkReset before each epoch, then ForkCommit
// to publish the epoch's writes, or nothing to discard them. The fork is
// single-goroutine; distinct forks of one parent may run concurrently as
// long as the parent itself is quiescent.
func (m *Memory) Fork() *Memory {
	pages := (len(m.data) + forkPageSize - 1) / forkPageSize
	return &Memory{
		data: m.data, // shared, read-only through the fork
		used: m.used,
		fk: &memFork{
			parent:    m,
			shadow:    make([]byte, len(m.data)),
			copied:    make([]uint32, pages),
			bitS:      make([]uint32, pages),
			readS:     make([]uint32, pages),
			writeS:    make([]uint32, pages),
			readBits:  make([]PageBits, pages),
			writeBits: make([]PageBits, pages),
			chain:     1,
			epoch:     1,
		},
	}
}

// IsFork reports whether this Memory is an epoch-fork view.
func (m *Memory) IsFork() bool { return m.fk != nil }

// ForkReset begins a new speculation epoch against the parent's current
// bytes: footprints clear, the abort flag drops, any stash is discarded,
// and every shadow page is considered stale. O(1) except on counter wrap.
func (m *Memory) ForkReset() {
	fk := m.fk
	fk.chain++
	if fk.chain == 0 { // wrapped: stamps are ambiguous, scrub them
		clear(fk.copied)
		fk.chain = 1
	}
	fk.epoch++
	if fk.epoch == 0 {
		clear(fk.bitS)
		clear(fk.readS)
		clear(fk.writeS)
		fk.epoch = 1
	}
	fk.reads = fk.reads[:0]
	fk.writes = fk.writes[:0]
	fk.abort = false
	fk.stashed = false
}

// ForkStash freezes the current epoch's footprint and written-page images
// for a later ordered commit (ForkCommitPending) and starts the next
// epoch in the same fork. Shadow pages stay valid — the continuation
// epoch reads the stashed epoch's values through them — but footprint
// bits go stale, so the new epoch records its own byte footprint from
// scratch. The caller must have established that the stashed epoch is
// clean (no abort) before stashing.
func (m *Memory) ForkStash() {
	fk := m.fk
	fk.stReads = append(fk.stReads[:0], fk.reads...)
	fk.stWrites = append(fk.stWrites[:0], fk.writes...)
	fk.stReadBits = fk.stReadBits[:0]
	for _, p := range fk.reads {
		fk.stReadBits = append(fk.stReadBits, fk.readBits[p])
	}
	fk.stWriteBits = fk.stWriteBits[:0]
	fk.stImage = fk.stImage[:0]
	for _, p := range fk.writes {
		fk.stWriteBits = append(fk.stWriteBits, fk.writeBits[p])
		base := p << forkPageShift
		end := base + forkPageSize
		if end > uint32(len(fk.shadow)) {
			end = uint32(len(fk.shadow))
		}
		var page [forkPageSize]byte
		copy(page[:], fk.shadow[base:end])
		fk.stImage = append(fk.stImage, page[:]...)
	}
	fk.stashed = true
	fk.epoch++
	if fk.epoch == 0 {
		clear(fk.bitS)
		clear(fk.readS)
		clear(fk.writeS)
		fk.epoch = 1
	}
	fk.reads = fk.reads[:0]
	fk.writes = fk.writes[:0]
}

// ForkCommit copies every byte the fork wrote this epoch back into the
// parent. The copy is byte-exact, not page-exact: two forks may have
// written disjoint byte ranges of a shared boundary page (no conflict),
// and a whole-page copy from the later fork would clobber the earlier
// fork's committed bytes with its stale shadow.
func (m *Memory) ForkCommit() {
	fk := m.fk
	for _, p := range fk.writes {
		base := p << forkPageShift
		wb := &fk.writeBits[p]
		for w, word := range wb {
			for word != 0 {
				i := bits.TrailingZeros64(word)
				word &= word - 1
				off := base + uint32(w)<<6 + uint32(i)
				fk.parent.data[off] = fk.shadow[off]
			}
		}
	}
}

// ForkCommitPending publishes the stashed epoch's writes into the parent,
// byte-exact from the stashed page images. The fork's live shadow (which
// has moved on to the continuation epoch) is untouched.
func (m *Memory) ForkCommitPending() {
	fk := m.fk
	for j, p := range fk.stWrites {
		base := p << forkPageShift
		img := fk.stImage[j*forkPageSize:]
		wb := &fk.stWriteBits[j]
		for w, word := range wb {
			for word != 0 {
				i := bits.TrailingZeros64(word)
				word &= word - 1
				off := uint32(w)<<6 + uint32(i)
				fk.parent.data[base+off] = img[off]
			}
		}
	}
	fk.stashed = false
}

// ForkFootprint reports the page indices the fork read and wrote this
// epoch. The slices are owned by the fork and valid until the next
// ForkReset or ForkStash.
func (m *Memory) ForkFootprint() (reads, writes []uint32) {
	return m.fk.reads, m.fk.writes
}

// ForkPendingFootprint reports the stashed epoch's page footprint.
func (m *Memory) ForkPendingFootprint() (reads, writes []uint32) {
	return m.fk.stReads, m.fk.stWrites
}

// ForkPageFootprint reports the byte-granular footprint of page p this
// epoch: bit i of read/write set means byte i of the page was read/written.
// Pages the fork never touched report all-zero.
func (m *Memory) ForkPageFootprint(p uint32) (read, write PageBits) {
	fk := m.fk
	if p < uint32(len(fk.bitS)) && fk.bitS[p] == fk.epoch {
		read, write = fk.readBits[p], fk.writeBits[p]
	}
	return read, write
}

// ForkPendingPageFootprint reports the stashed epoch's byte-granular
// footprint of page p. Linear in the stash size — the driver calls it
// only for pages already known shared via the page lists.
func (m *Memory) ForkPendingPageFootprint(p uint32) (read, write PageBits) {
	fk := m.fk
	for j, q := range fk.stReads {
		if q == p {
			read = fk.stReadBits[j]
			break
		}
	}
	for j, q := range fk.stWrites {
		if q == p {
			write = fk.stWriteBits[j]
			break
		}
	}
	return read, write
}

// ForkAborted reports whether the fork hit a structural operation this
// epoch and must be discarded.
func (m *Memory) ForkAborted() bool { return m.fk.abort }

// touch prepares the pages covering [b, b+n) for access and returns the
// shadow image to index into. Every touched page is copied from the parent
// once per fork chain (not per epoch — a stash-continued epoch keeps
// reading its predecessor's values), and its footprint bits are cleared
// once per epoch.
func (fk *memFork) touch(b Addr, n uint32, write bool) []byte {
	if n == 0 {
		return fk.shadow
	}
	lo := uint32(b) >> forkPageShift
	hi := (uint32(b) + n - 1) >> forkPageShift
	for p := lo; p <= hi; p++ {
		base := p << forkPageShift
		if fk.copied[p] != fk.chain {
			fk.copied[p] = fk.chain
			end := base + forkPageSize
			if end > uint32(len(fk.parent.data)) {
				end = uint32(len(fk.parent.data))
			}
			copy(fk.shadow[base:end], fk.parent.data[base:end])
		}
		if fk.bitS[p] != fk.epoch {
			fk.bitS[p] = fk.epoch
			fk.readBits[p] = PageBits{}
			fk.writeBits[p] = PageBits{}
		}
		// The byte span of [b, b+n) that lands within this page.
		slo, shi := uint32(b), uint32(b)+n
		if slo < base {
			slo = base
		}
		if shi > base+forkPageSize {
			shi = base + forkPageSize
		}
		if write {
			fk.writeBits[p].setRange(slo-base, shi-base)
			if fk.writeS[p] != fk.epoch {
				fk.writeS[p] = fk.epoch
				fk.writes = append(fk.writes, p)
			}
		} else {
			fk.readBits[p].setRange(slo-base, shi-base)
			if fk.readS[p] != fk.epoch {
				fk.readS[p] = fk.epoch
				fk.reads = append(fk.reads, p)
			}
		}
	}
	return fk.shadow
}

// ro returns the byte image to read [b, b+n) from: the live data for a
// plain Memory, the fork shadow for an epoch fork.
func (m *Memory) ro(b Addr, n uint32) []byte {
	if m.fk != nil {
		return m.fk.touch(b, n, false)
	}
	return m.data
}

// rw returns the byte image to write [b, b+n) into.
func (m *Memory) rw(b Addr, n uint32) []byte {
	if m.fk != nil {
		return m.fk.touch(b, n, true)
	}
	m.muts++
	return m.data
}
