package sro

import (
	"testing"
	"testing/quick"

	"repro/internal/obj"
)

func setup(t *testing.T) (*obj.Table, *Manager) {
	t.Helper()
	tab := obj.NewTable(1 << 20)
	return tab, NewManager(tab)
}

func TestGlobalHeapCreatesLevelZero(t *testing.T) {
	tab, m := setup(t)
	heap, f := m.NewGlobalHeap(0)
	if f != nil {
		t.Fatal(f)
	}
	ad, f := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 32})
	if f != nil {
		t.Fatal(f)
	}
	lvl, f := tab.LevelOf(ad)
	if f != nil || lvl != obj.LevelGlobal {
		t.Fatalf("level = %d, %v", lvl, f)
	}
	d := tab.DescriptorAt(ad.Index)
	if d.SRO != heap.Index {
		t.Fatalf("ancestral SRO = %d, want %d", d.SRO, heap.Index)
	}
}

func TestLocalHeapLevels(t *testing.T) {
	tab, m := setup(t)
	global, _ := m.NewGlobalHeap(0)
	local, f := m.NewLocalHeap(global, 3, 0)
	if f != nil {
		t.Fatal(f)
	}
	if lvl, _ := m.Level(local); lvl != 3 {
		t.Fatalf("local heap level = %d", lvl)
	}
	ad, f := m.Create(local, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		t.Fatal(f)
	}
	if lvl, _ := tab.LevelOf(ad); lvl != 3 {
		t.Fatalf("object level = %d", lvl)
	}
	// The level rule now protects the heap: a local object cannot be
	// stored into a global container.
	dir, _ := m.Create(global, obj.CreateSpec{Type: obj.TypeGeneric, AccessSlots: 1})
	if f := tab.StoreAD(dir, 0, ad); !obj.IsFault(f, obj.FaultLevel) {
		t.Fatalf("local escaped into global container: %v", f)
	}
}

func TestLocalHeapBelowParentRejected(t *testing.T) {
	_, m := setup(t)
	global, _ := m.NewGlobalHeap(0)
	deep, _ := m.NewLocalHeap(global, 5, 0)
	if _, f := m.NewLocalHeap(deep, 2, 0); !obj.IsFault(f, obj.FaultLevel) {
		t.Fatalf("child heap at shallower level: %v", f)
	}
}

func TestAllocateRightRequired(t *testing.T) {
	_, m := setup(t)
	heap, _ := m.NewGlobalHeap(0)
	weak := heap.Restrict(RightAllocate)
	if _, f := m.Create(weak, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4}); !obj.IsFault(f, obj.FaultRights) {
		t.Fatalf("create without allocate right: %v", f)
	}
	if _, f := m.NewLocalHeap(weak, 1, 0); !obj.IsFault(f, obj.FaultRights) {
		t.Fatalf("local heap without allocate right: %v", f)
	}
}

func TestStorageClaim(t *testing.T) {
	_, m := setup(t)
	heap, _ := m.NewGlobalHeap(100)
	if _, f := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 60}); f != nil {
		t.Fatal(f)
	}
	// 60 of 100 used: a 50-byte object must be refused by the claim,
	// not by physical memory.
	if _, f := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 50}); !obj.IsFault(f, obj.FaultStorageClaim) {
		t.Fatalf("claim exceeded: %v", f)
	}
	claim, used, allocs, f := m.Usage(heap)
	if f != nil {
		t.Fatal(f)
	}
	if claim != 100 || used != 60 || allocs != 1 {
		t.Fatalf("Usage = %d/%d, %d allocs", used, claim, allocs)
	}
}

func TestReclaimCreditsClaim(t *testing.T) {
	_, m := setup(t)
	heap, _ := m.NewGlobalHeap(100)
	ad, _ := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 80})
	if f := m.Reclaim(ad.Index); f != nil {
		t.Fatal(f)
	}
	_, used, _, _ := m.Usage(heap)
	if used != 0 {
		t.Fatalf("used = %d after reclaim", used)
	}
	// Claim is free again.
	if _, f := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 80}); f != nil {
		t.Fatalf("create after reclaim: %v", f)
	}
}

func TestAccessSlotsChargedToClaim(t *testing.T) {
	_, m := setup(t)
	heap, _ := m.NewGlobalHeap(64)
	// 8 slots × 8 bytes = 64 bytes: exactly fills the claim.
	if _, f := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, AccessSlots: 8}); f != nil {
		t.Fatal(f)
	}
	if _, f := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 1}); !obj.IsFault(f, obj.FaultStorageClaim) {
		t.Fatalf("claim should be exhausted: %v", f)
	}
}

func TestDestroyHeapBulk(t *testing.T) {
	tab, m := setup(t)
	global, _ := m.NewGlobalHeap(0)
	local, _ := m.NewLocalHeap(global, 2, 0)
	var ads []obj.AD
	for i := 0; i < 10; i++ {
		ad, f := m.Create(local, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 16})
		if f != nil {
			t.Fatal(f)
		}
		ads = append(ads, ad)
	}
	before := tab.Live()
	n, f := m.DestroyHeap(local)
	if f != nil {
		t.Fatal(f)
	}
	if n != 10 {
		t.Fatalf("destroyed %d, want 10", n)
	}
	if tab.Live() != before-11 { // 10 objects + the SRO itself
		t.Fatalf("Live = %d, want %d", tab.Live(), before-11)
	}
	for _, ad := range ads {
		if _, f := tab.ReadByteAt(ad, 0); !obj.IsFault(f, obj.FaultInvalidAD) {
			t.Fatalf("object survived heap destruction: %v", f)
		}
	}
}

func TestDestroyHeapRecursesIntoChildHeaps(t *testing.T) {
	tab, m := setup(t)
	global, _ := m.NewGlobalHeap(0)
	l1, _ := m.NewLocalHeap(global, 1, 0)
	l2, _ := m.NewLocalHeap(l1, 2, 0)
	for i := 0; i < 3; i++ {
		if _, f := m.Create(l2, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4}); f != nil {
			t.Fatal(f)
		}
	}
	n, f := m.DestroyHeap(l1)
	if f != nil {
		t.Fatal(f)
	}
	// l2 itself plus its 3 objects.
	if n != 4 {
		t.Fatalf("destroyed %d, want 4", n)
	}
	if _, f := tab.ReadWord(l2, offLevel); !obj.IsFault(f, obj.FaultInvalidAD) {
		t.Fatal("child SRO survived")
	}
}

func TestDestroyHeapCreditsParent(t *testing.T) {
	_, m := setup(t)
	global, _ := m.NewGlobalHeap(1000)
	local, _ := m.NewLocalHeap(global, 1, 0)
	_, usedAfterChild, _, _ := m.Usage(global)
	if usedAfterChild == 0 {
		t.Fatal("child SRO not charged to parent")
	}
	if _, f := m.DestroyHeap(local); f != nil {
		t.Fatal(f)
	}
	_, used, _, _ := m.Usage(global)
	if used != 0 {
		t.Fatalf("parent used = %d after child heap destroyed", used)
	}
}

func TestParent(t *testing.T) {
	_, m := setup(t)
	global, _ := m.NewGlobalHeap(0)
	local, _ := m.NewLocalHeap(global, 1, 0)
	p, f := m.Parent(local)
	if f != nil || p.Index != global.Index {
		t.Fatalf("Parent = %v, %v", p, f)
	}
	p, f = m.Parent(global)
	if f != nil || p.Valid() {
		t.Fatalf("root Parent = %v, %v", p, f)
	}
}

func TestCreateOnNonSRO(t *testing.T) {
	tab, m := setup(t)
	notSRO, _ := tab.Create(obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 16})
	if _, f := m.Create(notSRO, obj.CreateSpec{Type: obj.TypeGeneric}); !obj.IsFault(f, obj.FaultType) {
		t.Fatalf("create from non-SRO: %v", f)
	}
}

// TestClaimConservation property-checks that any interleaving of creates
// and reclaims leaves the SRO's used counter equal to the footprints of
// the objects still alive.
func TestClaimConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		tab := obj.NewTable(1 << 20)
		m := NewManager(tab)
		heap, _ := m.NewGlobalHeap(0)
		liveBytes := uint32(0)
		type rec struct {
			idx  obj.Index
			size uint32
		}
		var live []rec
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 {
				r := live[len(live)-1]
				live = live[:len(live)-1]
				if m.Reclaim(r.idx) != nil {
					return false
				}
				liveBytes -= r.size
				continue
			}
			size := uint32(op%512) + 1
			ad, f := m.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: size})
			if f != nil {
				continue
			}
			live = append(live, rec{ad.Index, size})
			liveBytes += size
		}
		_, used, _, _ := m.Usage(heap)
		return used == liveBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
