package sro

import (
	"math/rand"
	"testing"

	"repro/internal/obj"
)

// TestHeapTreeInvariant property-checks the SRO-tree story of §5 over
// randomly built heap trees: levels are monotone down the tree, and
// destroying any subtree root removes exactly its transitive population
// and nothing else.
func TestHeapTreeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		tab := obj.NewTable(1 << 22)
		m := NewManager(tab)
		root, f := m.NewGlobalHeap(0)
		if f != nil {
			t.Fatal(f)
		}

		type node struct {
			sro    obj.AD
			parent int // index in nodes; -1 for root
			level  obj.Level
		}
		nodes := []node{{sro: root, parent: -1, level: 0}}
		objOwner := map[obj.Index]int{} // object -> owning node

		// Grow a random tree with random allocations.
		for step := 0; step < 60; step++ {
			pi := rng.Intn(len(nodes))
			parent := nodes[pi]
			if rng.Intn(3) == 0 && len(nodes) < 12 {
				level := parent.level + obj.Level(rng.Intn(3))
				child, f := m.NewLocalHeap(parent.sro, level, 0)
				if f != nil {
					t.Fatal(f)
				}
				// Level monotonicity: children never shallower.
				if got, _ := m.Level(child); got < parent.level {
					t.Fatalf("child level %d below parent %d", got, parent.level)
				}
				nodes = append(nodes, node{sro: child, parent: pi, level: level})
				continue
			}
			ad, f := m.Create(parent.sro, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: uint32(rng.Intn(256)) + 1})
			if f != nil {
				t.Fatal(f)
			}
			objOwner[ad.Index] = pi
		}

		// Pick a victim subtree (not the root) and destroy it.
		if len(nodes) < 2 {
			continue
		}
		victim := 1 + rng.Intn(len(nodes)-1)
		inSubtree := func(ni int) bool {
			for ni != -1 {
				if ni == victim {
					return true
				}
				ni = nodes[ni].parent
			}
			return false
		}
		if _, f := m.DestroyHeap(nodes[victim].sro); f != nil {
			t.Fatal(f)
		}
		// Every object owned inside the subtree is gone; every object
		// outside survives.
		for idx, owner := range objOwner {
			alive := tab.DescriptorAt(idx) != nil
			if inSubtree(owner) && alive {
				t.Fatalf("trial %d: subtree object survived", trial)
			}
			if !inSubtree(owner) && !alive {
				t.Fatalf("trial %d: outside object destroyed", trial)
			}
		}
		// SROs themselves: subtree SROs gone, others alive.
		for ni, nd := range nodes {
			alive := tab.DescriptorAt(nd.sro.Index) != nil
			if inSubtree(ni) && alive {
				t.Fatalf("trial %d: subtree SRO survived", trial)
			}
			if !inSubtree(ni) && !alive {
				t.Fatalf("trial %d: outside SRO destroyed", trial)
			}
		}
	}
}
