package sro

import (
	"repro/internal/mem"
	"repro/internal/obj"
)

// Reservation refill: the serial half of fork-committable creation.
//
// The driver tops up each simulated CPU's obj.Reservation between epochs,
// on the real (non-fork) system, in canonical CPU order — so the grants
// themselves are ordinary serial structural operations, identical in the
// serial and parallel corners. The in-fork half (obj.CreateFromReservation)
// then consumes the pre-granted slots and arena bytes without touching
// any shared allocator state.
//
// Accounting invariant (checked by audit.CheckSROs): an SRO's used field
// equals the footprints of its live objects plus the unconsumed arena
// bytes of live reservations bound to it. The whole arena is charged at
// grant time; consumed bytes become object footprints one-for-one (bump
// allocation wastes nothing), and Reclaim credits footprints back exactly
// as for ordinary creation, so the invariant holds at every step.
const (
	// ReserveSlotTarget is the slot batch granted per refill;
	// ReserveSlotLow triggers a top-up. Slot top-ups are append-only —
	// they extend the reservation's tail without moving the cursor — so
	// they never invalidate a pipelined continuation speculating against
	// the old cursor; the batch size only sets how much of each top-up
	// the free list must cover. ReserveSlotFresh caps the *fresh* slots
	// minted per refill: fresh slots extend the descriptor table, the
	// collector's passes scan the table linearly, and an uncapped grant
	// would tax every GC cycle with slots that reclamation churn feeds
	// back through the free list anyway. A quantum bounds creates per
	// processor at roughly quantum/CostCreateObject (~8 at the default 5k
	// quantum), so the low mark covers one quantum of the tightest
	// possible create loop; a pipelined continuation that out-allocates
	// the tail falls back structurally (abort, refill, fresh run) without
	// losing determinism. The constants are deliberately small: the hoard
	// inflates the live descriptor table, and E6's stall separation is a
	// direct measure of that tax.
	ReserveSlotTarget = 12
	ReserveSlotLow    = 8
	ReserveSlotFresh  = 8
	// ReserveArenaBytes is the storage granted per refill, halved down
	// to ReserveArenaLow when the claim or free memory cannot cover it.
	ReserveArenaBytes = 48 << 10
	ReserveArenaLow   = 8 << 10
)

// reservationAD synthesises the full-rights capability the manager uses
// to reach a bound reservation's SRO. r.Gen holds the full descriptor
// generation, so the AD dangles detectably if the SRO died.
func reservationAD(r *obj.Reservation) obj.AD {
	return obj.AD{Index: r.SRO, Gen: r.Gen, Rights: obj.RightsAll}
}

// reservationAlive reports whether the bound SRO still exists with the
// generation the reservation was granted against.
func (m *Manager) reservationAlive(r *obj.Reservation) bool {
	d := m.Table.DescriptorAt(r.SRO)
	return d != nil && d.Type == obj.TypeSRO && d.Gen == r.Gen
}

// RefillReservation reconciles and tops up one CPU's reservation, binding
// (or rebinding) it to want when valid. It reports whether the refill
// *invalidated* the reservation's existing state — moved the cursor,
// rebound, swapped the arena, compacted the slot slice, or rewrote SRO
// bytes — which is what forces the driver to drop a pipelined
// continuation speculating against a copy of the old value. An
// append-only slot top-up is NOT invalidating: the consumed prefix and
// the Next cursor are untouched, so a continuation that never saw the new
// tail is still consuming exactly the slots the serial corner would. A
// claim-exhausted refill that only *reads* (charge attempts that fault)
// also reports false, so steady-state exhaustion doesn't perturb the
// pipeline. Must be called on the real (non-fork) system only.
func (m *Manager) RefillReservation(r *obj.Reservation, want obj.AD) bool {
	changed := false

	// A dead or superseded binding releases first: remainder bytes back
	// to memory (and to the SRO's claim if it still exists), unconsumed
	// slots back to the free list.
	if r.SRO != obj.NilIndex {
		stale := !m.reservationAlive(r)
		superseded := want.Valid() && want.Index != r.SRO
		if stale || superseded {
			m.ReleaseReservation(r)
			changed = true
		}
	}

	// Bind to the wanted SRO. Validation mirrors Create's checks; a want
	// that would fault there simply leaves the reservation unbound and
	// the structural path produces the canonical fault.
	if r.SRO == obj.NilIndex {
		if !want.Valid() {
			return changed
		}
		d, f := m.Table.RequireType(want, obj.TypeSRO)
		if f != nil || !want.Rights.Has(RightAllocate) {
			return changed
		}
		level, f := m.Table.ReadWord(want, offLevel)
		if f != nil {
			return changed
		}
		r.SRO = want.Index
		r.Gen = d.Gen
		r.Level = obj.Level(level)
		changed = true
	}

	ad := reservationAD(r)

	// Reconcile the SRO's cumulative allocation counter with the creates
	// consumed from this reservation — but only when an (invalidating)
	// arena top-up is due anyway. A steady-state refill that merely
	// reconciled would rewrite SRO bytes and invalidate the pipelined
	// continuation after every allocating epoch; letting Consumed ride
	// until the next arena turnover keeps refills pipeline-transparent
	// between batches (ReleaseReservation also reconciles, so nothing is
	// lost). The lag is deterministic: refills run identically in every
	// corner.
	needArena := r.ArenaLeft() < ReserveArenaLow
	if needArena && r.Consumed > 0 {
		allocs, f := m.Table.ReadDWord(ad, offAllocs)
		if f == nil {
			_ = m.Table.WriteDWord(ad, offAllocs, allocs+r.Consumed)
		}
		r.Consumed = 0
		changed = true
	}

	// Compact the consumed slot prefix away — this moves the cursor, so
	// it only happens when the arena turnover invalidates the continuation
	// anyway, or when the append-only tail has grown past bound (objects
	// with empty parts consume slots without ever depleting the arena).
	if r.Next > 0 && (needArena || len(r.Slots) >= 4*ReserveSlotTarget) {
		n := copy(r.Slots, r.Slots[r.Next:])
		r.Slots = r.Slots[:n]
		r.Next = 0
		changed = true
	}

	// Slot top-up: append to the tail up to target. Slots carry no
	// storage claim, existing entries and the Next cursor are untouched,
	// so this is pipeline-transparent — not a change.
	if r.SlotsLeft() < ReserveSlotLow {
		r.Slots = m.Table.ReserveSlots(r.Slots, ReserveSlotTarget-r.SlotsLeft(), ReserveSlotFresh)
	}

	// Arena top-up: return the unconsumed remainder, then charge and
	// allocate a fresh arena, halving the request when the claim or free
	// memory cannot cover it. All-fail leaves the arena empty (creates
	// fall back to the structural path and its canonical faults).
	if needArena {
		if rem := r.ArenaLeft(); rem > 0 {
			_ = m.Table.Memory().Free(mem.Extent{Base: r.Arena.Base + mem.Addr(r.ArenaOff), Len: rem})
			m.credit(r.SRO, rem)
			changed = true
		}
		r.Arena, r.ArenaOff = mem.Extent{}, 0
		for req := uint32(ReserveArenaBytes); req >= ReserveArenaLow; req >>= 1 {
			if f := m.charge(ad, req); f != nil {
				continue // claim cannot cover req; try smaller
			}
			ext, err := m.Table.Memory().Alloc(req)
			if err != nil {
				m.credit(r.SRO, req)
				continue // fragmentation; try smaller
			}
			r.Arena = ext
			changed = true
			break
		}
	}
	return changed
}

// ReleaseReservation returns everything unconsumed — arena remainder to
// physical memory (credited to the SRO's claim if it is still alive),
// slots to the table's free list — and unbinds. Consumed capacity stays
// where it is: those bytes are live objects' footprints and those slots
// are live objects' descriptors. Must be called on the real system only.
func (m *Manager) ReleaseReservation(r *obj.Reservation) {
	if r.SRO == obj.NilIndex {
		return
	}
	alive := m.reservationAlive(r)
	if rem := r.ArenaLeft(); rem > 0 {
		_ = m.Table.Memory().Free(mem.Extent{Base: r.Arena.Base + mem.Addr(r.ArenaOff), Len: rem})
		if alive {
			m.credit(r.SRO, rem)
		}
	}
	if alive && r.Consumed > 0 {
		ad := reservationAD(r)
		allocs, f := m.Table.ReadDWord(ad, offAllocs)
		if f == nil {
			_ = m.Table.WriteDWord(ad, offAllocs, allocs+r.Consumed)
		}
	}
	m.Table.UnreserveSlots(r.Slots[r.Next:])
	*r = obj.Reservation{}
}
