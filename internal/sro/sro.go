// Package sro implements storage resource objects, the 432's memory
// allocation abstraction (§5 of the paper).
//
// An SRO "describes free areas of memory and provides the information
// necessary to allocate both physical and logical address space". Every
// object is created from some SRO and inherits the SRO's level number;
// iMAX arranges SROs and processes into a tree so that Ada's scoping and
// lifetime rules fall out of the hardware's level checks:
//
//   - a global heap is an SRO creating level-0 objects that live until the
//     collector proves them unreachable;
//   - a local heap is an SRO created at a process's current dynamic depth;
//     references to its objects cannot escape upward (the level rule), so
//     the whole heap can be destroyed in bulk when the depth is exited —
//     "without leaving dangling references".
//
// SROs carry a storage claim: a byte budget drawn down by creation and
// credited by reclamation, which is how iMAX arbitrates memory among
// subsystems without a central table.
package sro

import (
	"repro/internal/obj"
)

// RightAllocate on an SRO capability permits creating objects from it.
const RightAllocate = obj.RightT1

// SRO data-part layout.
const (
	offLevel  = 0  // word: level of objects created from this SRO
	offClaim  = 4  // dword: storage claim in bytes (0 = unlimited)
	offUsed   = 8  // dword: bytes currently drawn
	offAllocs = 12 // dword: cumulative creation count
	sroData   = 16
)

// SRO access-part slots.
const (
	slotParent = 0 // parent SRO (NilAD for the root)
	sroSlots   = 1
)

// Manager provides the SRO operations over an object table. iMAX's memory
// managers (internal/mm) layer policy (swapping or not) over this
// mechanism.
type Manager struct {
	Table *obj.Table
}

// NewManager returns an SRO manager over the given table.
func NewManager(t *obj.Table) *Manager { return &Manager{Table: t} }

// NewGlobalHeap creates a root SRO producing level-0 (immortal until
// collected) objects. claim limits the bytes it may have outstanding;
// 0 means bounded only by physical memory. The SRO object itself is
// level 0 and belongs to no SRO (it is reclaimed only explicitly).
func (m *Manager) NewGlobalHeap(claim uint32) (obj.AD, *obj.Fault) {
	return m.newSRO(obj.NilAD, obj.LevelGlobal, claim)
}

// NewLocalHeap creates an SRO producing objects at the given level,
// drawing storage accounted to the parent SRO. Destroying the parent
// destroys the local heap and, transitively, everything allocated from it
// (§5: objects "may be destroyed whenever their ancestral SRO is
// destroyed").
func (m *Manager) NewLocalHeap(parent obj.AD, level obj.Level, claim uint32) (obj.AD, *obj.Fault) {
	if _, f := m.Table.RequireType(parent, obj.TypeSRO); f != nil {
		return obj.NilAD, f
	}
	if !parent.Rights.Has(RightAllocate) {
		return obj.NilAD, obj.Faultf(obj.FaultRights, parent, "need allocate right on SRO")
	}
	parentLevel, f := m.Table.ReadWord(parent, offLevel)
	if f != nil {
		return obj.NilAD, f
	}
	if level < obj.Level(parentLevel) {
		return obj.NilAD, obj.Faultf(obj.FaultLevel, parent,
			"local heap level %d below parent's %d", level, parentLevel)
	}
	return m.newSRO(parent, level, claim)
}

func (m *Manager) newSRO(parent obj.AD, level obj.Level, claim uint32) (obj.AD, *obj.Fault) {
	spec := obj.CreateSpec{
		Type:        obj.TypeSRO,
		DataLen:     sroData,
		AccessSlots: sroSlots,
	}
	if parent.Valid() {
		// The SRO object itself is allocated from its parent so that
		// bulk destruction of the parent sweeps it up. Its own level
		// is the parent's level (the SRO must be storable where its
		// creator can reach it), while the objects it creates get
		// the (deeper) level recorded in its data part.
		pl, f := m.Table.ReadWord(parent, offLevel)
		if f != nil {
			return obj.NilAD, f
		}
		spec.Level = obj.Level(pl)
		spec.SRO = parent.Index
	}
	sroAD, f := m.Table.Create(spec)
	if f != nil {
		return obj.NilAD, f
	}
	if parent.Valid() {
		if f := m.charge(parent, sroData+sroSlots*obj.ADSlotSize); f != nil {
			_ = m.Table.DestroyIndex(sroAD.Index)
			return obj.NilAD, f
		}
	}
	if f := m.Table.WriteWord(sroAD, offLevel, uint16(level)); f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.WriteDWord(sroAD, offClaim, claim); f != nil {
		return obj.NilAD, f
	}
	if parent.Valid() {
		if f := m.Table.StoreAD(sroAD, slotParent, parent.Restrict(obj.RightsAll)); f != nil {
			return obj.NilAD, f
		}
	}
	return sroAD, nil
}

// footprint is the byte cost charged to an SRO for an object.
func footprint(spec obj.CreateSpec) uint32 {
	return spec.DataLen + spec.AccessSlots*obj.ADSlotSize
}

func (m *Manager) charge(sro obj.AD, n uint32) *obj.Fault {
	claim, f := m.Table.ReadDWord(sro, offClaim)
	if f != nil {
		return f
	}
	used, f := m.Table.ReadDWord(sro, offUsed)
	if f != nil {
		return f
	}
	if claim != 0 && used+n > claim {
		return obj.Faultf(obj.FaultStorageClaim, sro,
			"claim %d bytes, used %d, need %d more", claim, used, n)
	}
	return m.Table.WriteDWord(sro, offUsed, used+n)
}

func (m *Manager) credit(sroIdx obj.Index, n uint32) {
	d := m.Table.DescriptorAt(sroIdx)
	if d == nil || d.Type != obj.TypeSRO {
		return // ancestral SRO already gone; nothing to credit
	}
	ad := obj.AD{Index: sroIdx, Gen: d.Gen, Rights: obj.RightsAll}
	used, f := m.Table.ReadDWord(ad, offUsed)
	if f != nil {
		return
	}
	if n > used {
		n = used // never underflow; damaged accounting degrades safely
	}
	_ = m.Table.WriteDWord(ad, offUsed, used-n)
}

// Create allocates a new object from the SRO: the create-object
// instruction's software half. The object's level and ancestry come from
// the SRO; the spec's Type, DataLen and AccessSlots are the caller's.
func (m *Manager) Create(sro obj.AD, spec obj.CreateSpec) (obj.AD, *obj.Fault) {
	if _, f := m.Table.RequireType(sro, obj.TypeSRO); f != nil {
		return obj.NilAD, f
	}
	if !sro.Rights.Has(RightAllocate) {
		return obj.NilAD, obj.Faultf(obj.FaultRights, sro, "need allocate right on SRO")
	}
	level, f := m.Table.ReadWord(sro, offLevel)
	if f != nil {
		return obj.NilAD, f
	}
	spec.Level = obj.Level(level)
	spec.SRO = sro.Index
	if f := m.charge(sro, footprint(spec)); f != nil {
		return obj.NilAD, f
	}
	ad, f := m.Table.Create(spec)
	if f != nil {
		m.credit(sro.Index, footprint(spec))
		return obj.NilAD, f
	}
	allocs, _ := m.Table.ReadDWord(sro, offAllocs)
	_ = m.Table.WriteDWord(sro, offAllocs, allocs+1)
	return ad, nil
}

// Reclaim destroys the object at idx and credits its footprint back to its
// ancestral SRO. The collector's sweep uses this instead of raw
// DestroyIndex so that storage claims stay truthful.
func (m *Manager) Reclaim(idx obj.Index) *obj.Fault {
	d := m.Table.DescriptorAt(idx)
	if d == nil {
		return obj.Faultf(obj.FaultInvalidAD, obj.AD{Index: idx}, "no such object")
	}
	sroIdx := d.SRO
	size := d.DataLen + d.AccessSlots*obj.ADSlotSize
	if f := m.Table.DestroyIndex(idx); f != nil {
		return f
	}
	if sroIdx != obj.NilIndex {
		m.credit(sroIdx, size)
	}
	return nil
}

// DestroyHeap destroys the SRO and, in bulk, every live object allocated
// from it — including child SROs and, recursively, their allocations. This
// is the fast local-heap reclamation of §5/§8.1: no marking, no reference
// tracing, just lifetime knowledge. It reports how many objects were
// destroyed (excluding the SRO itself).
func (m *Manager) DestroyHeap(sro obj.AD) (int, *obj.Fault) {
	if _, f := m.Table.RequireType(sro, obj.TypeSRO); f != nil {
		return 0, f
	}
	if !sro.Rights.Has(obj.RightDelete) {
		return 0, obj.Faultf(obj.FaultRights, sro, "need delete right on SRO")
	}
	n := m.destroyAllocations(sro.Index)
	if f := m.Reclaim(sro.Index); f != nil {
		return n, f
	}
	return n, nil
}

func (m *Manager) destroyAllocations(sroIdx obj.Index) int {
	var victims []obj.Index
	m.Table.AliveBySRO(sroIdx, func(i obj.Index) { victims = append(victims, i) })
	n := 0
	for _, v := range victims {
		d := m.Table.DescriptorAt(v)
		if d == nil {
			continue // already destroyed via a nested SRO
		}
		if d.Type == obj.TypeSRO {
			n += m.destroyAllocations(v)
		}
		if m.Table.DestroyIndex(v) == nil {
			n++
		}
	}
	return n
}

// Usage reports the SRO's claim, bytes in use, and cumulative allocations.
func (m *Manager) Usage(sro obj.AD) (claim, used, allocs uint32, f *obj.Fault) {
	if _, f := m.Table.RequireType(sro, obj.TypeSRO); f != nil {
		return 0, 0, 0, f
	}
	if claim, f = m.Table.ReadDWord(sro, offClaim); f != nil {
		return
	}
	if used, f = m.Table.ReadDWord(sro, offUsed); f != nil {
		return
	}
	allocs, f = m.Table.ReadDWord(sro, offAllocs)
	return
}

// Level reports the level number of objects created from this SRO.
func (m *Manager) Level(sro obj.AD) (obj.Level, *obj.Fault) {
	if _, f := m.Table.RequireType(sro, obj.TypeSRO); f != nil {
		return 0, f
	}
	l, f := m.Table.ReadWord(sro, offLevel)
	return obj.Level(l), f
}

// Parent reports the SRO's parent capability, or NilAD for a root.
func (m *Manager) Parent(sro obj.AD) (obj.AD, *obj.Fault) {
	if _, f := m.Table.RequireType(sro, obj.TypeSRO); f != nil {
		return obj.NilAD, f
	}
	return m.Table.LoadAD(sro, slotParent)
}
