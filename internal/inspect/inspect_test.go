package inspect

import (
	"strings"
	"testing"

	"repro/internal/obj"
	"repro/internal/sro"
)

func setup(t *testing.T) (*obj.Table, *sro.Manager, obj.AD) {
	t.Helper()
	tab := obj.NewTable(1 << 20)
	s := sro.NewManager(tab)
	heap, f := s.NewGlobalHeap(0)
	if f != nil {
		t.Fatal(f)
	}
	return tab, s, heap
}

func TestSnapshotCounts(t *testing.T) {
	tab, s, heap := setup(t)
	if f := tab.Pin(heap); f != nil {
		t.Fatal(f)
	}
	root, _ := s.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, AccessSlots: 4, Pinned: true})
	kept, _ := s.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 100})
	if f := tab.StoreAD(root, 0, kept); f != nil {
		t.Fatal(f)
	}
	// Two unreachable objects.
	s.Create(heap, obj.CreateSpec{Type: obj.TypePort, DataLen: 32, AccessSlots: 8})
	s.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})

	snap := Take(tab)
	if snap.Live != 5 { // heap SRO + root + kept + 2 strays
		t.Fatalf("Live = %d", snap.Live)
	}
	if snap.Pinned != 2 {
		t.Fatalf("Pinned = %d", snap.Pinned)
	}
	if snap.Reachable != 3 { // heap, root, kept
		t.Fatalf("Reachable = %d", snap.Reachable)
	}
	var genCount, portCount int
	for _, tc := range snap.ByType {
		switch tc.Type {
		case obj.TypeGeneric:
			genCount = tc.Count
		case obj.TypePort:
			portCount = tc.Count
		}
	}
	if genCount != 3 || portCount != 1 {
		t.Fatalf("histogram: generic=%d port=%d", genCount, portCount)
	}
	var buf strings.Builder
	snap.Write(&buf)
	out := buf.String()
	for _, want := range []string{"5 live", "collectible", "generic", "port"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotSwappedAccounting(t *testing.T) {
	tab, s, heap := setup(t)
	ad, _ := s.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 64})
	if f := tab.SwapOut(ad.Index, 1); f != nil {
		t.Fatal(f)
	}
	snap := Take(tab)
	if snap.SwappedOut != 1 {
		t.Fatalf("SwappedOut = %d", snap.SwappedOut)
	}
}

func TestGraphListing(t *testing.T) {
	tab, s, heap := setup(t)
	root, _ := s.Create(heap, obj.CreateSpec{Type: obj.TypeGeneric, AccessSlots: 2})
	leaf, _ := s.Create(heap, obj.CreateSpec{Type: obj.TypePort, DataLen: 32, AccessSlots: 8})
	tab.StoreAD(root, 0, leaf)
	var buf strings.Builder
	Graph(&buf, tab, root, 3)
	out := buf.String()
	if !strings.Contains(out, "generic") || !strings.Contains(out, "port") {
		t.Fatalf("graph listing incomplete:\n%s", out)
	}
	// Depth limiting: at depth 0 only the root prints.
	buf.Reset()
	Graph(&buf, tab, root, 0)
	if strings.Contains(buf.String(), "port") {
		t.Fatal("depth limit ignored")
	}
}
