package inspect

import (
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/trace"
)

// WriteTrace renders a kernel event log: the per-kind counters followed by
// the most recent `last` events (0 means all retained events). A nil log
// prints a note and nothing else, so callers need not guard.
func WriteTrace(w io.Writer, l *trace.Log, last int) {
	if !l.Enabled() {
		fmt.Fprintln(w, "trace: disabled")
		return
	}
	fmt.Fprintf(w, "trace: %d events emitted\n", l.Seq())
	l.WriteCounts(w)
	evs := l.Events()
	if last > 0 && len(evs) > last {
		fmt.Fprintf(w, "last %d events:\n", last)
		evs = evs[len(evs)-last:]
	} else if len(evs) > 0 {
		fmt.Fprintf(w, "retained %d events:\n", len(evs))
	}
	for _, e := range evs {
		fmt.Fprintf(w, "  %s\n", e)
	}
}

// WriteAudit renders an invariant-audit result and returns the violation
// count (zero for a clean system).
func WriteAudit(w io.Writer, vs []audit.Violation) int {
	if len(vs) == 0 {
		fmt.Fprintln(w, "audit: all invariants hold")
		return 0
	}
	fmt.Fprintf(w, "audit: %d violations\n", len(vs))
	for _, v := range vs {
		fmt.Fprintf(w, "  %s\n", v)
	}
	return len(vs)
}
