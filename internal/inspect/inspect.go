// Package inspect provides read-only views of a running system's object
// population: type histograms, storage accounting and reachability
// summaries. It is diagnostic tooling for the harness and the imax CLI —
// and a demonstration of the §7.1 observation that in a capability system
// "global system inquiries which are easily answered in most systems by
// consulting some central table become difficult": everything here works
// by sweeping the object table from outside the capability discipline,
// something no in-system domain could do.
package inspect

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obj"
)

// TypeCount is one row of a type histogram.
type TypeCount struct {
	Type    obj.Type
	Count   int
	Bytes   uint64 // data + access parts
	Swapped int
}

// Snapshot summarises an object table at one instant.
type Snapshot struct {
	Live       int
	Slots      int
	UsedBytes  uint64
	Pinned     int
	SwappedOut int
	ByType     []TypeCount
	// Reachable counts objects reachable from the pinned roots;
	// Unreachable = Live - Reachable is the collectible backlog.
	Reachable int
}

// Take sweeps the table and builds a snapshot.
func Take(t *obj.Table) *Snapshot {
	s := &Snapshot{Slots: t.Len()}
	byType := map[obj.Type]*TypeCount{}
	var roots []obj.Index
	for i := 1; i < t.Len(); i++ {
		idx := obj.Index(i)
		d := t.DescriptorAt(idx)
		if d == nil {
			continue
		}
		s.Live++
		size := uint64(d.DataLen) + uint64(d.AccessSlots)*obj.ADSlotSize
		s.UsedBytes += size
		tc := byType[d.Type]
		if tc == nil {
			tc = &TypeCount{Type: d.Type}
			byType[d.Type] = tc
		}
		tc.Count++
		tc.Bytes += size
		if d.SwappedOut {
			s.SwappedOut++
			tc.Swapped++
		}
		if d.Pinned {
			s.Pinned++
			roots = append(roots, idx)
		}
	}
	for _, tc := range byType {
		s.ByType = append(s.ByType, *tc)
	}
	sort.Slice(s.ByType, func(i, j int) bool { return s.ByType[i].Count > s.ByType[j].Count })

	// Reachability sweep from pinned roots.
	seen := map[obj.Index]bool{}
	queue := append([]obj.Index(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(queue) > 0 {
		idx := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		_ = t.Referents(idx, func(ad obj.AD) {
			if !seen[ad.Index] {
				seen[ad.Index] = true
				queue = append(queue, ad.Index)
			}
		})
	}
	s.Reachable = len(seen)
	return s
}

// Write renders the snapshot as a table.
func (s *Snapshot) Write(w io.Writer) {
	fmt.Fprintf(w, "objects: %d live in %d slots, %d bytes, %d pinned, %d swapped out\n",
		s.Live, s.Slots, s.UsedBytes, s.Pinned, s.SwappedOut)
	fmt.Fprintf(w, "reachable from roots: %d (%d collectible)\n", s.Reachable, s.Live-s.Reachable)
	fmt.Fprintf(w, "%-12s %8s %12s %8s\n", "type", "count", "bytes", "swapped")
	for _, tc := range s.ByType {
		fmt.Fprintf(w, "%-12s %8d %12d %8d\n", tc.Type, tc.Count, tc.Bytes, tc.Swapped)
	}
}

// Graph writes the reachable object graph rooted at ad in a dot-like
// adjacency listing, depth-limited; a debugging aid for examples.
func Graph(w io.Writer, t *obj.Table, root obj.AD, maxDepth int) {
	type node struct {
		idx   obj.Index
		depth int
	}
	seen := map[obj.Index]bool{root.Index: true}
	queue := []node{{root.Index, 0}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		d := t.DescriptorAt(n.idx)
		if d == nil {
			continue
		}
		fmt.Fprintf(w, "%*s#%d %s (level %d, %dB+%d slots)\n",
			n.depth*2, "", n.idx, d.Type, d.Level, d.DataLen, d.AccessSlots)
		if n.depth >= maxDepth {
			continue
		}
		_ = t.Referents(n.idx, func(ad obj.AD) {
			if !seen[ad.Index] {
				seen[ad.Index] = true
				queue = append(queue, node{ad.Index, n.depth + 1})
			}
		})
	}
}
