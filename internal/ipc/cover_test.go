package ipc

import (
	"testing"

	"repro/internal/obj"
	"repro/internal/port"
)

func TestPortExposure(t *testing.T) {
	fx := setup(t)
	u, _ := CreateUntyped(fx.ports, fx.heap, 2, port.FIFO)
	if !u.Port().Valid() {
		t.Fatal("Untyped.Port invalid")
	}
	tp, _ := CreateTyped[tapeMsg](fx.ports, fx.heap, 2, port.FIFO)
	if !tp.Port().Valid() {
		t.Fatal("Typed.Port invalid")
	}
	tdo, _ := fx.tdos.Define("x", obj.LevelGlobal, obj.NilIndex)
	cp, f := CreateChecked(fx.ports, fx.tdos, fx.heap, tdo, 2, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	if !cp.Port().Valid() {
		t.Fatal("Checked.Port invalid")
	}
	if n, err := cp.Count(); err != nil || n != 0 {
		t.Fatalf("Checked.Count = %d, %v", n, err)
	}
}

func TestTypedSendKeyed(t *testing.T) {
	fx := setup(t)
	tp, _ := CreateTyped[tapeMsg](fx.ports, fx.heap, 4, port.Priority)
	low := Wrap[tapeMsg](fx.msg(t))
	high := Wrap[tapeMsg](fx.msg(t))
	if err := tp.SendKeyed(low, 1); err != nil {
		t.Fatal(err)
	}
	if err := tp.SendKeyed(high, 9); err != nil {
		t.Fatal(err)
	}
	got, err := tp.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.AD().Index != high.AD().Index {
		t.Fatal("typed keyed send lost its key")
	}
	if n, _ := tp.Count(); n != 1 {
		t.Fatalf("Count = %d", n)
	}
}
