// Package ipc is the iMAX view of interprocess communication (§4 of the
// paper): the Untyped_Ports package of Figure 1, the generic Typed_Ports
// package of Figure 2, and the runtime-checked variant the paper sketches
// ("It is possible to take the idea of typed ports one step further in the
// 432 to provide the type checking dynamically at runtime").
//
// The three layers demonstrate the paper's central claim about zero-cost
// abstraction: Typed is a compile-time-only wrapper over Untyped — its
// methods do nothing but delegate, so "the code generated for any instance
// of this package [is] identical to that generated for the untyped port
// package. Thus the user of typed ports suffers no penalty relative to
// even a hypothetical assembly language programmer." Checked adds the few
// extra instructions of a runtime TDO comparison. Experiment E4 measures
// all three.
//
// The Go-facing Send and Receive here are the conditional forms: a Go
// caller is not a simulated process and cannot be parked at a port, so a
// full or empty port reports ErrWouldBlock. Code running inside the
// simulated machine gets the blocking semantics of Figure 1 from the send
// and receive instructions (internal/gdp).
package ipc

import (
	"errors"

	"repro/internal/obj"
	"repro/internal/port"
	"repro/internal/typedef"
)

// ErrWouldBlock reports a conditional send to a full port or receive from
// an empty one.
var ErrWouldBlock = errors.New("ipc: operation would block")

// Untyped is Figure 1: ports carrying any access descriptor.
type Untyped struct {
	ports *port.Manager
	prt   obj.AD
}

// CreateUntyped makes a port with the given message_count and queueing
// discipline, as Figure 1's Create_port.
func CreateUntyped(m *port.Manager, heap obj.AD, messageCount uint16, d port.Discipline) (Untyped, *obj.Fault) {
	p, f := m.Create(heap, messageCount, d)
	if f != nil {
		return Untyped{}, f
	}
	return Untyped{ports: m, prt: p}, nil
}

// UntypedOver wraps an existing port capability.
func UntypedOver(m *port.Manager, prt obj.AD) Untyped {
	return Untyped{ports: m, prt: prt}
}

// Port exposes the underlying port capability (for handing to spawned
// processes).
func (u Untyped) Port() obj.AD { return u.prt }

// Send queues msg; ErrWouldBlock when the queue is full.
func (u Untyped) Send(msg obj.AD) error {
	blocked, _, f := u.ports.Send(u.prt, msg, 0, obj.NilAD)
	if f != nil {
		return f
	}
	if blocked {
		return ErrWouldBlock
	}
	return nil
}

// SendKeyed queues msg with an ordering key (priority or deadline
// disciplines).
func (u Untyped) SendKeyed(msg obj.AD, key uint32) error {
	blocked, _, f := u.ports.Send(u.prt, msg, key, obj.NilAD)
	if f != nil {
		return f
	}
	if blocked {
		return ErrWouldBlock
	}
	return nil
}

// Receive takes the next message; ErrWouldBlock when the queue is empty.
func (u Untyped) Receive() (obj.AD, error) {
	msg, blocked, _, f := u.ports.Receive(u.prt, obj.NilAD)
	if f != nil {
		return obj.NilAD, f
	}
	if blocked {
		return obj.NilAD, ErrWouldBlock
	}
	return msg, nil
}

// Count reports queued messages.
func (u Untyped) Count() (int, error) {
	n, f := u.ports.Count(u.prt)
	if f != nil {
		return 0, f
	}
	return n, nil
}

// Handle is a capability carrying a compile-time message type. The phantom
// parameter T makes Handle[Tape] and Handle[Disk] distinct Go types even
// though both are one AD at runtime — exactly the Ada "new port" derived
// type of Figure 2's private part.
type Handle[T any] struct {
	ad obj.AD
}

// Wrap seals an AD into a typed handle. In the paper this is the
// unchecked_conversion inside the package body of Typed_Ports: callers
// outside the type manager should obtain handles from their manager, not
// construct them.
func Wrap[T any](ad obj.AD) Handle[T] { return Handle[T]{ad: ad} }

// AD unseals the handle.
func (h Handle[T]) AD() obj.AD { return h.ad }

// Valid reports whether the handle carries a capability.
func (h Handle[T]) Valid() bool { return h.ad.Valid() }

// Typed is Figure 2: a generic instantiation whose operations type-check
// at compile time and compile to exactly the untyped operations.
type Typed[T any] struct {
	u Untyped
}

// CreateTyped instantiates the generic package for message type T.
func CreateTyped[T any](m *port.Manager, heap obj.AD, messageCount uint16, d port.Discipline) (Typed[T], *obj.Fault) {
	u, f := CreateUntyped(m, heap, messageCount, d)
	if f != nil {
		return Typed[T]{}, f
	}
	return Typed[T]{u: u}, nil
}

// TypedOver wraps an existing port capability with a compile-time type.
func TypedOver[T any](m *port.Manager, prt obj.AD) Typed[T] {
	return Typed[T]{u: UntypedOver(m, prt)}
}

// Port exposes the underlying port capability.
func (p Typed[T]) Port() obj.AD { return p.u.Port() }

// Send queues a typed message. Pure delegation: no extra work at runtime.
func (p Typed[T]) Send(msg Handle[T]) error { return p.u.Send(msg.ad) }

// SendKeyed queues a typed message with an ordering key.
func (p Typed[T]) SendKeyed(msg Handle[T], key uint32) error {
	return p.u.SendKeyed(msg.ad, key)
}

// Receive takes the next typed message.
func (p Typed[T]) Receive() (Handle[T], error) {
	ad, err := p.u.Receive()
	if err != nil {
		return Handle[T]{}, err
	}
	return Handle[T]{ad: ad}, nil
}

// Count reports queued messages.
func (p Typed[T]) Count() (int, error) { return p.u.Count() }

// Checked is the runtime-checked variant: every send verifies that the
// message is an instance of the port's TDO, and every receive re-verifies
// on the way out — "a few more generated instructions making use of
// user-defined types but ... otherwise the same as above."
type Checked struct {
	u    Untyped
	tdos *typedef.Manager
	tdo  obj.AD
}

// CreateChecked makes a runtime-typed port bound to the given TDO.
func CreateChecked(m *port.Manager, td *typedef.Manager, heap obj.AD, tdo obj.AD,
	messageCount uint16, d port.Discipline) (Checked, *obj.Fault) {
	if _, f := td.Table.RequireType(tdo, obj.TypeTDO); f != nil {
		return Checked{}, f
	}
	u, f := CreateUntyped(m, heap, messageCount, d)
	if f != nil {
		return Checked{}, f
	}
	return Checked{u: u, tdos: td, tdo: tdo}, nil
}

// Port exposes the underlying port capability.
func (p Checked) Port() obj.AD { return p.u.Port() }

// Send queues msg after verifying its user type.
func (p Checked) Send(msg obj.AD) error {
	ok, f := p.tdos.Is(p.tdo, msg)
	if f != nil {
		return f
	}
	if !ok {
		return obj.Faultf(obj.FaultType, msg, "message is not an instance of the port's type")
	}
	return p.u.Send(msg)
}

// Receive takes the next message, re-verifying its type: even if a rogue
// capability was smuggled in below this wrapper, it cannot come out as
// the wrong type (§7.2's guarantee made visible).
func (p Checked) Receive() (obj.AD, error) {
	msg, err := p.u.Receive()
	if err != nil {
		return obj.NilAD, err
	}
	ok, f := p.tdos.Is(p.tdo, msg)
	if f != nil {
		return obj.NilAD, f
	}
	if !ok {
		return obj.NilAD, obj.Faultf(obj.FaultType, msg, "received object is not an instance of the port's type")
	}
	return msg, nil
}

// Count reports queued messages.
func (p Checked) Count() (int, error) { return p.u.Count() }
