package ipc

import (
	"errors"
	"testing"

	"repro/internal/obj"
	"repro/internal/port"
	"repro/internal/sro"
	"repro/internal/typedef"
)

type fixture struct {
	tab   *obj.Table
	sros  *sro.Manager
	ports *port.Manager
	tdos  *typedef.Manager
	heap  obj.AD
}

func setup(t *testing.T) *fixture {
	t.Helper()
	tab := obj.NewTable(1 << 20)
	s := sro.NewManager(tab)
	heap, f := s.NewGlobalHeap(0)
	if f != nil {
		t.Fatal(f)
	}
	return &fixture{
		tab: tab, sros: s,
		ports: port.NewManager(tab, s),
		tdos:  typedef.NewManager(tab),
		heap:  heap,
	}
}

func (fx *fixture) msg(t *testing.T) obj.AD {
	t.Helper()
	ad, f := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		t.Fatal(f)
	}
	return ad
}

func TestUntypedRoundTrip(t *testing.T) {
	fx := setup(t)
	u, f := CreateUntyped(fx.ports, fx.heap, 4, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	m := fx.msg(t)
	if err := u.Send(m); err != nil {
		t.Fatal(err)
	}
	if n, _ := u.Count(); n != 1 {
		t.Fatalf("Count = %d", n)
	}
	got, err := u.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != m.Index {
		t.Fatal("wrong message")
	}
}

func TestUntypedWouldBlock(t *testing.T) {
	fx := setup(t)
	u, _ := CreateUntyped(fx.ports, fx.heap, 1, port.FIFO)
	if _, err := u.Receive(); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("empty receive: %v", err)
	}
	if err := u.Send(fx.msg(t)); err != nil {
		t.Fatal(err)
	}
	if err := u.Send(fx.msg(t)); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("full send: %v", err)
	}
}

func TestUntypedKeyed(t *testing.T) {
	fx := setup(t)
	u, _ := CreateUntyped(fx.ports, fx.heap, 4, port.Priority)
	low, high := fx.msg(t), fx.msg(t)
	if err := u.SendKeyed(low, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.SendKeyed(high, 10); err != nil {
		t.Fatal(err)
	}
	got, _ := u.Receive()
	if got.Index != high.Index {
		t.Fatal("priority key ignored")
	}
}

// Marker types for compile-time port typing.
type tapeMsg struct{}
type diskMsg struct{}

func TestTypedRoundTrip(t *testing.T) {
	fx := setup(t)
	p, f := CreateTyped[tapeMsg](fx.ports, fx.heap, 4, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	m := Wrap[tapeMsg](fx.msg(t))
	if err := p.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := p.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.AD().Index != m.AD().Index {
		t.Fatal("wrong message")
	}
	if !got.Valid() {
		t.Fatal("handle invalid")
	}
	if n, _ := p.Count(); n != 0 {
		t.Fatalf("Count = %d", n)
	}
	// The compile-time guarantee itself: the following must not
	// compile, which we can only document here.
	//
	//	var dp Typed[diskMsg]
	//	dp.Send(m) // ERROR: cannot use m (Handle[tapeMsg]) as Handle[diskMsg]
	var _ Typed[diskMsg] // the other instantiation coexists fine
}

func TestTypedAndUntypedInteroperate(t *testing.T) {
	// Figure 2's implementation is in terms of Untyped: wrapping the
	// same hardware port typed and untyped observes the same queue.
	fx := setup(t)
	u, _ := CreateUntyped(fx.ports, fx.heap, 4, port.FIFO)
	tp := TypedOver[tapeMsg](fx.ports, u.Port())
	m := fx.msg(t)
	if err := u.Send(m); err != nil {
		t.Fatal(err)
	}
	got, err := tp.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.AD().Index != m.Index {
		t.Fatal("typed view missed untyped send")
	}
}

func TestCheckedEnforcesTypeOnSend(t *testing.T) {
	fx := setup(t)
	tape, _ := fx.tdos.Define("tape", obj.LevelGlobal, obj.NilIndex)
	p, f := CreateChecked(fx.ports, fx.tdos, fx.heap, tape, 4, port.FIFO)
	if f != nil {
		t.Fatal(f)
	}
	inst, f := fx.tdos.CreateInstance(tape, obj.CreateSpec{DataLen: 8})
	if f != nil {
		t.Fatal(f)
	}
	if err := p.Send(inst); err != nil {
		t.Fatal(err)
	}
	got, err := p.Receive()
	if err != nil || got.Index != inst.Index {
		t.Fatalf("checked round trip: %v %v", got, err)
	}
	// An untyped object is refused.
	plain := fx.msg(t)
	if err := p.Send(plain); !obj.IsFault(err, obj.FaultType) {
		t.Fatalf("untyped message accepted: %v", err)
	}
	// An instance of another TDO is refused.
	disk, _ := fx.tdos.Define("disk", obj.LevelGlobal, obj.NilIndex)
	dinst, _ := fx.tdos.CreateInstance(disk, obj.CreateSpec{DataLen: 8})
	if err := p.Send(dinst); !obj.IsFault(err, obj.FaultType) {
		t.Fatalf("wrong-type message accepted: %v", err)
	}
}

func TestCheckedReceiveVerifies(t *testing.T) {
	// A capability smuggled in below the wrapper cannot come out as the
	// wrong type.
	fx := setup(t)
	tape, _ := fx.tdos.Define("tape", obj.LevelGlobal, obj.NilIndex)
	p, _ := CreateChecked(fx.ports, fx.tdos, fx.heap, tape, 4, port.FIFO)
	// Smuggle via the raw hardware port.
	raw := UntypedOver(fx.ports, p.Port())
	if err := raw.Send(fx.msg(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Receive(); !obj.IsFault(err, obj.FaultType) {
		t.Fatalf("smuggled message passed the receive check: %v", err)
	}
}

func TestCreateCheckedRequiresTDO(t *testing.T) {
	fx := setup(t)
	notTDO := fx.msg(t)
	if _, f := CreateChecked(fx.ports, fx.tdos, fx.heap, notTDO, 4, port.FIFO); !obj.IsFault(f, obj.FaultType) {
		t.Fatalf("non-TDO accepted: %v", f)
	}
}
