package port_test

// Tests in this file live outside the port package so they can drive the
// cross-subsystem auditor (internal/audit imports internal/port) against
// randomized port traffic.

import (
	"math/rand"
	"testing"

	"repro/internal/audit"
	"repro/internal/obj"
	"repro/internal/port"
	"repro/internal/sro"
)

type harness struct {
	tab  *obj.Table
	sros *sro.Manager
	m    *port.Manager
	heap obj.AD
	a    *audit.Auditor
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	tab := obj.NewTable(1 << 22)
	s := sro.NewManager(tab)
	heap, f := s.NewGlobalHeap(0)
	if f != nil {
		t.Fatal(f)
	}
	m := port.NewManager(tab, s)
	return &harness{
		tab: tab, sros: s, m: m, heap: heap,
		a: &audit.Auditor{Table: tab, SROs: s, Ports: m},
	}
}

func (h *harness) alloc(t testing.TB, typ obj.Type) obj.AD {
	t.Helper()
	ad, f := h.sros.Create(h.heap, obj.CreateSpec{Type: typ, DataLen: 16, AccessSlots: 2})
	if f != nil {
		t.Fatal(f)
	}
	return ad
}

func (h *harness) audit(t testing.TB, when string) {
	t.Helper()
	for _, v := range h.a.CheckAll() {
		t.Errorf("%s: audit: %s", when, v)
	}
}

// FuzzPortSendReceive drives an arbitrary interleaving of sends,
// conditional sends, receives, conditional receives and waiter
// cancellations against one port, auditing the whole kernel state as it
// goes: whatever the sequence, the queueing structure and the carrier
// accounting must stay well-formed.
func FuzzPortSendReceive(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{2, 1, 0, 0, 0, 0, 2, 2, 2, 2, 4, 4})
	f.Add([]byte{3, 2, 0, 8, 16, 2, 3, 1, 0, 4, 2, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) < 2 {
			return
		}
		h := newHarness(t)
		capacity := uint16(ops[0]%4) + 1
		disc := port.Discipline(ops[1] % 3)
		prt, fa := h.m.Create(h.heap, capacity, disc)
		if fa != nil {
			t.Fatal(fa)
		}
		var parkedSend, parkedRecv []obj.AD // waiting processes, park order
		ops = ops[2:]
		if len(ops) > 300 {
			ops = ops[:300]
		}
		// unparked removes a process a Wake reports as woken from the
		// model of the corresponding wait queue.
		unparked := func(pool *[]obj.AD, w *port.Wake) {
			if w == nil {
				return
			}
			for j, p := range *pool {
				if p.Index == w.Process.Index {
					*pool = append((*pool)[:j], (*pool)[j+1:]...)
					return
				}
			}
		}
		for i, b := range ops {
			switch b % 5 {
			case 0: // blocking send
				proc := h.alloc(t, obj.TypeProcess)
				blocked, wake, f := h.m.Send(prt, h.alloc(t, obj.TypeGeneric), uint32(b>>3), proc)
				if f != nil {
					t.Fatalf("op %d send: %v", i, f)
				}
				if blocked {
					parkedSend = append(parkedSend, proc)
				}
				unparked(&parkedRecv, wake)
			case 1: // conditional send: never parks
				_, wake, f := h.m.Send(prt, h.alloc(t, obj.TypeGeneric), uint32(b>>3), obj.NilAD)
				if f != nil {
					t.Fatalf("op %d csend: %v", i, f)
				}
				unparked(&parkedRecv, wake)
			case 2: // blocking receive
				proc := h.alloc(t, obj.TypeProcess)
				_, blocked, wake, f := h.m.Receive(prt, proc)
				if f != nil {
					t.Fatalf("op %d recv: %v", i, f)
				}
				if blocked {
					parkedRecv = append(parkedRecv, proc)
				}
				unparked(&parkedSend, wake)
			case 3: // conditional receive
				_, _, wake, f := h.m.Receive(prt, obj.NilAD)
				if f != nil {
					t.Fatalf("op %d crecv: %v", i, f)
				}
				unparked(&parkedSend, wake)
			case 4: // cancel a parked waiter (either side)
				pool := &parkedSend
				if b&8 != 0 && len(parkedRecv) > 0 || len(parkedSend) == 0 {
					pool = &parkedRecv
				}
				if len(*pool) == 0 {
					continue
				}
				j := int(b>>4) % len(*pool)
				proc := (*pool)[j]
				found, _, f := h.m.CancelWaiter(prt, proc)
				if f != nil {
					t.Fatalf("op %d cancel: %v", i, f)
				}
				if !found {
					t.Fatalf("op %d: parked process %v not found by cancel", i, proc)
				}
				*pool = append((*pool)[:j], (*pool)[j+1:]...)
			}
			if i%16 == 15 {
				h.audit(t, "mid-sequence")
			}
		}
		h.audit(t, "final")
	})
}

// TestDisciplineOrderUnderInterleaving is the discipline-order property:
// against a model queue of (key, arrival) pairs, randomized interleavings
// of Send, Receive and CancelWaiter must deliver messages in exactly the
// order the port's discipline promises — FIFO by arrival, Priority by
// highest key, Deadline by lowest key (arrival breaking ties) — with
// parked senders refilling the queue in park order. The auditor checks
// structural health alongside the ordering model.
func TestDisciplineOrderUnderInterleaving(t *testing.T) {
	type entry struct {
		msg obj.AD
		key uint32
		seq int
	}
	for _, disc := range []port.Discipline{port.FIFO, port.Priority, port.Deadline} {
		disc := disc
		t.Run(disc.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(432 + int64(disc)))
			for trial := 0; trial < 25; trial++ {
				h := newHarness(t)
				capacity := uint16(rng.Intn(3)) + 1
				prt, f := h.m.Create(h.heap, capacity, disc)
				if f != nil {
					t.Fatal(f)
				}
				var queue []entry // model of the slot contents
				type waiter struct {
					proc, msg obj.AD
					key       uint32
				}
				var parked []waiter // model of the sender wait queue
				seq := 0

				best := func() int {
					b := 0
					for i, e := range queue[1:] {
						switch disc {
						case port.FIFO:
							if e.seq < queue[b].seq {
								b = i + 1
							}
						case port.Priority:
							if e.key > queue[b].key || (e.key == queue[b].key && e.seq < queue[b].seq) {
								b = i + 1
							}
						case port.Deadline:
							if e.key < queue[b].key || (e.key == queue[b].key && e.seq < queue[b].seq) {
								b = i + 1
							}
						}
					}
					return b
				}

				for op := 0; op < 120; op++ {
					switch rng.Intn(4) {
					case 0, 1: // send with a random key
						msg := h.alloc(t, obj.TypeGeneric)
						proc := h.alloc(t, obj.TypeProcess)
						key := uint32(rng.Intn(8))
						blocked, _, f := h.m.Send(prt, msg, key, proc)
						if f != nil {
							t.Fatal(f)
						}
						if blocked {
							parked = append(parked, waiter{proc, msg, key})
						} else {
							queue = append(queue, entry{msg, key, seq})
							seq++
						}
					case 2: // receive must deliver the model's best
						msg, blocked, _, f := h.m.Receive(prt, obj.NilAD)
						if f != nil {
							t.Fatal(f)
						}
						if blocked {
							if len(queue) != 0 {
								t.Fatalf("trial %d: port empty but model holds %d", trial, len(queue))
							}
							continue
						}
						b := best()
						if msg.Index != queue[b].msg.Index {
							t.Fatalf("trial %d op %d (%v): received %d, discipline orders %d first",
								trial, op, disc, msg.Index, queue[b].msg.Index)
						}
						queue = append(queue[:b], queue[b+1:]...)
						if len(parked) > 0 { // head sender's message refills the slot
							queue = append(queue, entry{parked[0].msg, parked[0].key, seq})
							seq++
							parked = parked[1:]
						}
					case 3: // cancel a random parked sender
						if len(parked) == 0 {
							continue
						}
						j := rng.Intn(len(parked))
						found, msg, f := h.m.CancelWaiter(prt, parked[j].proc)
						if f != nil {
							t.Fatal(f)
						}
						if !found || msg.Index != parked[j].msg.Index {
							t.Fatalf("trial %d: cancel returned found=%v msg=%v, want %v",
								trial, found, msg, parked[j].msg)
						}
						parked = append(parked[:j], parked[j+1:]...)
					}
				}
				h.audit(t, "after interleaving")

				// Drain and check the tail ordering too.
				for len(queue) > 0 {
					msg, blocked, _, f := h.m.Receive(prt, obj.NilAD)
					if f != nil || blocked {
						t.Fatalf("drain: blocked=%v fault=%v with %d modeled", blocked, f, len(queue))
					}
					b := best()
					if msg.Index != queue[b].msg.Index {
						t.Fatalf("drain (%v): received %d, discipline orders %d first",
							disc, msg.Index, queue[b].msg.Index)
					}
					queue = append(queue[:b], queue[b+1:]...)
					if len(parked) > 0 {
						queue = append(queue, entry{parked[0].msg, parked[0].key, seq})
						seq++
						parked = parked[1:]
					}
				}
				h.audit(t, "after drain")
			}
		})
	}
}
