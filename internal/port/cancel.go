package port

import (
	"repro/internal/obj"
	"repro/internal/trace"
)

// Waiter cancellation: the piece of the port machinery that timeout
// service is built on. A process parked at a port (as sender or receiver)
// can be unlinked before its operation completes — the interval timer
// fires, the process manager wants to destroy the process, or a level-2
// timeout fault must be raised (§7.3). The carrier is removed and returned
// to the port's free pool; a cancelled sender's message is returned so the
// caller can decide its fate.

// CancelWaiter removes proc from the port's wait queues. It reports
// whether the process was found, and, for a cancelled sender, the message
// its carrier held. The sender queue is searched first; a fault there
// aborts the whole cancellation immediately — the receiver queue must not
// be walked over a port whose sender queue just proved corrupt.
func (m *Manager) CancelWaiter(p obj.AD, proc obj.AD) (found bool, msg obj.AD, f *obj.Fault) {
	if _, f := m.Table.RequireType(p, obj.TypePort); f != nil {
		return false, obj.NilAD, f
	}
	found, msg, f = m.unlink(p, slotSendHead, slotSendTail, proc)
	if f != nil {
		return false, obj.NilAD, f
	}
	if !found {
		found, msg, f = m.unlink(p, slotRecvHead, slotRecvTail, proc)
		if f != nil {
			return false, obj.NilAD, f
		}
	}
	if found {
		if l := m.Table.Tracer(); l != nil {
			l.Emit(trace.EvCancel, uint32(p.Index), uint32(proc.Index), 0)
		}
	}
	return found, msg, nil
}

// unlink removes the carrier holding proc from one wait queue.
func (m *Manager) unlink(p obj.AD, headSlot, tailSlot uint32, proc obj.AD) (bool, obj.AD, *obj.Fault) {
	var prev obj.AD
	cur, f := m.Table.LoadAD(p, headSlot)
	if f != nil {
		return false, obj.NilAD, f
	}
	for cur.Valid() {
		held, f := m.Table.LoadAD(cur, carSlotProcess)
		if f != nil {
			return false, obj.NilAD, f
		}
		next, f := m.Table.LoadAD(cur, carSlotNext)
		if f != nil {
			return false, obj.NilAD, f
		}
		if held.Index == proc.Index {
			msg, f := m.Table.LoadAD(cur, carSlotMessage)
			if f != nil {
				return false, obj.NilAD, f
			}
			// Splice the carrier out.
			if prev.Valid() {
				if f := m.Table.StoreADSystem(prev, carSlotNext, next); f != nil {
					return false, obj.NilAD, f
				}
			} else {
				if f := m.Table.StoreADSystem(p, headSlot, next); f != nil {
					return false, obj.NilAD, f
				}
			}
			if !next.Valid() {
				if f := m.Table.StoreADSystem(p, tailSlot, prev); f != nil {
					return false, obj.NilAD, f
				}
			}
			if f := m.pool(p, cur); f != nil {
				return false, obj.NilAD, f
			}
			return true, msg, nil
		}
		prev, cur = cur, next
	}
	return false, obj.NilAD, nil
}
