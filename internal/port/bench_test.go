package port

import (
	"fmt"
	"testing"

	"repro/internal/obj"
)

// Microbenchmarks for the port fast paths: steady-state send/receive per
// discipline, the sparse-occupancy selection scan (takeBest's early exit —
// before PR5 it walked every slot of the capacity regardless of count), and
// the park/unpark cycle that carrier pooling turned from create+destroy
// into free-list traffic.

func benchMsg(b *testing.B, fx *fixture) obj.AD {
	b.Helper()
	msg, f := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		b.Fatal(f)
	}
	return msg
}

func benchProc(b *testing.B, fx *fixture) obj.AD {
	b.Helper()
	p, f := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeProcess, DataLen: 32, AccessSlots: 4})
	if f != nil {
		b.Fatal(f)
	}
	return p
}

// BenchmarkSendReceive measures one send plus one receive on a half-full
// queue, per discipline: FIFO pops the head ring slot, priority and
// deadline run the selection scan over the occupied slots.
func BenchmarkSendReceive(b *testing.B) {
	for _, d := range []Discipline{FIFO, Priority, Deadline} {
		b.Run(d.String(), func(b *testing.B) {
			fx := setupQuick()
			p, f := fx.m.Create(fx.heap, 64, d)
			if f != nil {
				b.Fatal(f)
			}
			msg := benchMsg(b, fx)
			for i := 0; i < 32; i++ {
				if blocked, _, f := fx.m.Send(p, msg, uint32(i), obj.NilAD); f != nil || blocked {
					b.Fatalf("preload %d: %v %v", i, blocked, f)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if blocked, _, f := fx.m.Send(p, msg, uint32(i), obj.NilAD); f != nil || blocked {
					b.Fatalf("send: %v %v", blocked, f)
				}
				if _, _, _, f := fx.m.Receive(p, obj.NilAD); f != nil {
					b.Fatal(f)
				}
			}
		})
	}
}

// BenchmarkSelectionSparse is the takeBest early-exit case: a large port
// holding only a handful of messages. The scan now stops after the last
// occupied slot instead of walking the whole capacity.
func BenchmarkSelectionSparse(b *testing.B) {
	for _, capacity := range []uint16{64, 1024, 4096} {
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			fx := setupQuick()
			p, f := fx.m.Create(fx.heap, capacity, Priority)
			if f != nil {
				b.Fatal(f)
			}
			msg := benchMsg(b, fx)
			for i := 0; i < 8; i++ {
				if blocked, _, f := fx.m.Send(p, msg, uint32(i), obj.NilAD); f != nil || blocked {
					b.Fatalf("preload %d: %v %v", i, blocked, f)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, f := fx.m.Receive(p, obj.NilAD); f != nil {
					b.Fatal(f)
				}
				if blocked, _, f := fx.m.Send(p, msg, uint32(i), obj.NilAD); f != nil || blocked {
					b.Fatalf("send: %v %v", blocked, f)
				}
			}
		})
	}
}

// BenchmarkParkUnpark measures a blocked send plus the receive that wakes
// it on a full capacity-1 port — the path that allocates a carrier per
// cycle without pooling, and reuses the port's free-list carrier with it.
func BenchmarkParkUnpark(b *testing.B) {
	fx := setupQuick()
	p, f := fx.m.Create(fx.heap, 1, FIFO)
	if f != nil {
		b.Fatal(f)
	}
	msg := benchMsg(b, fx)
	proc := benchProc(b, fx)
	if blocked, _, f := fx.m.Send(p, msg, 0, obj.NilAD); f != nil || blocked {
		b.Fatalf("fill: %v %v", blocked, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocked, _, f := fx.m.Send(p, msg, 0, proc)
		if f != nil || !blocked {
			b.Fatalf("park: %v %v", blocked, f)
		}
		if _, _, wake, f := fx.m.Receive(p, obj.NilAD); f != nil || wake == nil {
			b.Fatalf("unpark: %v %v", wake, f)
		}
	}
}
