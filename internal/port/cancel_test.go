package port

import (
	"testing"

	"repro/internal/obj"
)

func TestCancelBlockedSender(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD) // fill
	proc := fx.newProc(t)
	msg := fx.newMsg(t)
	if blocked, _, f := fx.m.Send(p, msg, 0, proc); f != nil || !blocked {
		t.Fatalf("park failed: %v %v", blocked, f)
	}
	found, got, f := fx.m.CancelWaiter(p, proc)
	if f != nil {
		t.Fatal(f)
	}
	if !found {
		t.Fatal("parked sender not found")
	}
	if got.Index != msg.Index {
		t.Fatal("cancelled sender's message not returned")
	}
	if n, _ := fx.m.WaitingSenders(p); n != 0 {
		t.Fatalf("WaitingSenders = %d after cancel", n)
	}
	// The port still works: draining the one queued message wakes
	// nobody (the cancelled sender is gone).
	_, _, wake, f := fx.m.Receive(p, obj.NilAD)
	if f != nil {
		t.Fatal(f)
	}
	if wake != nil {
		t.Fatal("cancelled sender woken")
	}
}

func TestCancelBlockedReceiver(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 2, FIFO)
	proc := fx.newProc(t)
	if _, blocked, _, f := fx.m.Receive(p, proc); f != nil || !blocked {
		t.Fatalf("park failed: %v %v", blocked, f)
	}
	found, msg, f := fx.m.CancelWaiter(p, proc)
	if f != nil || !found {
		t.Fatalf("cancel: %v %v", found, f)
	}
	if msg.Valid() {
		t.Fatal("receiver carrier held a message")
	}
	// A subsequent send queues instead of waking the gone receiver.
	blocked, wake, f := fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD)
	if f != nil || blocked || wake != nil {
		t.Fatalf("send after cancel: %v %v %v", blocked, wake, f)
	}
	if n, _ := fx.m.Count(p); n != 1 {
		t.Fatalf("Count = %d", n)
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD) // fill
	procs := []obj.AD{fx.newProc(t), fx.newProc(t), fx.newProc(t)}
	for _, proc := range procs {
		if blocked, _, f := fx.m.Send(p, fx.newMsg(t), 0, proc); f != nil || !blocked {
			t.Fatalf("park: %v %v", blocked, f)
		}
	}
	// Cancel the middle waiter.
	if found, _, f := fx.m.CancelWaiter(p, procs[1]); f != nil || !found {
		t.Fatalf("cancel middle: %v %v", found, f)
	}
	if n, _ := fx.m.WaitingSenders(p); n != 2 {
		t.Fatalf("WaitingSenders = %d", n)
	}
	// The remaining waiters wake in their original order.
	_, _, wake, _ := fx.m.Receive(p, obj.NilAD)
	if wake == nil || wake.Process.Index != procs[0].Index {
		t.Fatal("first waiter wrong after middle cancel")
	}
	_, _, wake, _ = fx.m.Receive(p, obj.NilAD)
	if wake == nil || wake.Process.Index != procs[2].Index {
		t.Fatal("last waiter wrong after middle cancel")
	}
}

func TestCancelTailThenAppend(t *testing.T) {
	// Removing the tail must fix the tail pointer so later parks link
	// correctly.
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD)
	a, bProc := fx.newProc(t), fx.newProc(t)
	fx.m.Send(p, fx.newMsg(t), 0, a)
	fx.m.Send(p, fx.newMsg(t), 0, bProc)
	if found, _, f := fx.m.CancelWaiter(p, bProc); f != nil || !found {
		t.Fatalf("cancel tail: %v %v", found, f)
	}
	c := fx.newProc(t)
	if blocked, _, f := fx.m.Send(p, fx.newMsg(t), 0, c); f != nil || !blocked {
		t.Fatalf("append after tail cancel: %v %v", blocked, f)
	}
	if n, _ := fx.m.WaitingSenders(p); n != 2 {
		t.Fatalf("WaitingSenders = %d", n)
	}
	_, _, wake, _ := fx.m.Receive(p, obj.NilAD)
	if wake == nil || wake.Process.Index != a.Index {
		t.Fatal("head waiter wrong")
	}
	_, _, wake, _ = fx.m.Receive(p, obj.NilAD)
	if wake == nil || wake.Process.Index != c.Index {
		t.Fatal("appended waiter lost after tail cancel")
	}
}

func TestCancelAbsentWaiter(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 2, FIFO)
	proc := fx.newProc(t)
	found, _, f := fx.m.CancelWaiter(p, proc)
	if f != nil {
		t.Fatal(f)
	}
	if found {
		t.Fatal("absent waiter reported found")
	}
	notPort := fx.newMsg(t)
	if _, _, f := fx.m.CancelWaiter(notPort, proc); !obj.IsFault(f, obj.FaultType) {
		t.Fatalf("cancel on non-port: %v", f)
	}
}

func TestCancelDanglingPort(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 2, FIFO)
	proc := fx.newProc(t)
	if f := fx.tab.DestroyIndex(p.Index); f != nil {
		t.Fatal(f)
	}
	found, _, f := fx.m.CancelWaiter(p, proc)
	if f == nil || found {
		t.Fatalf("cancel through dangling port AD: found=%v fault=%v", found, f)
	}
}

// TestCancelFaultReturnsImmediately: a fault while walking a wait queue
// aborts the whole cancellation — no result, no continued walking over a
// port that just proved corrupt.
func TestCancelFaultReturnsImmediately(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD) // fill
	first, second := fx.newProc(t), fx.newProc(t)
	fx.m.Send(p, fx.newMsg(t), 0, first)
	fx.m.Send(p, fx.newMsg(t), 0, second)
	st, f := fx.m.Inspect(p)
	if f != nil || len(st.Senders) != 2 {
		t.Fatalf("inspect: %v senders=%d", f, len(st.Senders))
	}
	// Destroy the head carrier out from under the queue; the walk to the
	// second waiter must fault on the dangling link, not skip over it.
	if f := fx.tab.DestroyIndex(st.Senders[0].Carrier); f != nil {
		t.Fatal(f)
	}
	found, msg, f := fx.m.CancelWaiter(p, second)
	if f == nil {
		t.Fatal("walk over destroyed carrier did not fault")
	}
	if found || msg.Valid() {
		t.Fatalf("faulting cancel returned a result: found=%v msg=%v", found, msg)
	}
}

func TestCancelPoolsCarrier(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD)
	proc := fx.newProc(t)
	msg := fx.newMsg(t)
	before := fx.tab.Live()
	fx.m.Send(p, msg, 0, proc) // +1 carrier
	if fx.tab.Live() != before+1 {
		t.Fatalf("carrier not created: %d vs %d", fx.tab.Live(), before+1)
	}
	fx.m.CancelWaiter(p, proc)
	if fx.tab.Live() != before+1 {
		t.Fatal("cancelled carrier destroyed; want it scrubbed and pooled")
	}
	st, f := fx.m.Inspect(p)
	if f != nil || len(st.Free) != 1 {
		t.Fatalf("free pool after cancel: %v, %d carriers, want 1", f, len(st.Free))
	}
	if len(st.Senders) != 0 {
		t.Fatalf("cancelled waiter still parked: %d senders", len(st.Senders))
	}
	// The pooled carrier must not pin the cancelled sender's message.
	car := fx.tab.DescriptorAt(st.Free[0])
	if car == nil || car.Type != obj.TypeCarrier {
		t.Fatalf("free-pool entry is not a live carrier: %+v", car)
	}
	if held, f := fx.tab.LoadAD(obj.AD{Index: st.Free[0], Gen: car.Gen, Rights: obj.RightsAll}, CarSlotMessage); f != nil || held.Valid() {
		t.Fatalf("pooled carrier still holds a message: %v %v", held, f)
	}
}
