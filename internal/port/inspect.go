package port

import "repro/internal/obj"

// Structural inspection for the invariant auditor (internal/audit) and the
// inspect tooling. These read the port's slot records and wait queues
// below the capability discipline, the way the collector reads the object
// graph: they observe, never mutate.

// Carrier access-slot layout, exported for the auditor's free-pool scrub
// check (the wait queues are audited through Waiter instead).
const (
	CarSlotProcess = carSlotProcess
	CarSlotMessage = carSlotMessage
)

// Waiter describes one carrier on a port wait queue.
type Waiter struct {
	Carrier obj.Index
	Process obj.AD
	Msg     obj.AD // carried message (senders); NilAD for receivers
	Key     uint32
}

// SlotState describes one message slot.
type SlotState struct {
	Occupied bool
	Msg      obj.AD
	Key      uint32
	Seq      uint32
}

// State is a port's complete queueing structure at one instant.
type State struct {
	Discipline Discipline
	Capacity   uint16
	Count      uint16 // the stored count field, not a recount
	Slots      []SlotState
	Senders    []Waiter
	Receivers  []Waiter
	// Free lists the carriers parked on the port's free pool: scrubbed,
	// holding neither process nor message, awaiting reuse by park.
	Free []obj.Index
	// SendTail/RecvTail are the tail-slot contents (NilIndex for an
	// empty queue); the auditor checks them against the walked lists.
	SendTail obj.Index
	RecvTail obj.Index
}

// OccupiedSlots counts the slots holding a message.
func (st *State) OccupiedSlots() int {
	n := 0
	for _, s := range st.Slots {
		if s.Occupied {
			n++
		}
	}
	return n
}

// Inspect reads the port's full queueing structure. Wait-queue walks are
// bounded by the table size, so a corrupted (cyclic) queue faults instead
// of hanging.
func (m *Manager) Inspect(p obj.AD) (*State, *obj.Fault) {
	if _, f := m.Table.RequireType(p, obj.TypePort); f != nil {
		return nil, f
	}
	st := &State{}
	disc, f := m.Table.ReadWord(p, offDiscipline)
	if f != nil {
		return nil, f
	}
	st.Discipline = Discipline(disc)
	if st.Capacity, st.Count, f = m.counts(p); f != nil {
		return nil, f
	}
	st.Slots = make([]SlotState, st.Capacity)
	for i := uint32(0); i < uint32(st.Capacity); i++ {
		rec := offSlots + i*slotRecSize
		occ, f := m.Table.ReadWord(p, rec+recOccupied)
		if f != nil {
			return nil, f
		}
		if occ == 0 {
			continue
		}
		s := &st.Slots[i]
		s.Occupied = true
		if s.Msg, f = m.Table.LoadAD(p, slotMsg0+i); f != nil {
			return nil, f
		}
		if s.Key, f = m.Table.ReadDWord(p, rec+recKey); f != nil {
			return nil, f
		}
		if s.Seq, f = m.Table.ReadDWord(p, rec+recSeq); f != nil {
			return nil, f
		}
	}
	if st.Senders, f = m.walkWaiters(p, slotSendHead); f != nil {
		return nil, f
	}
	if st.Receivers, f = m.walkWaiters(p, slotRecvHead); f != nil {
		return nil, f
	}
	if st.Free, f = m.walkFree(p); f != nil {
		return nil, f
	}
	if tail, f := m.Table.LoadAD(p, slotSendTail); f != nil {
		return nil, f
	} else {
		st.SendTail = tailIndex(tail)
	}
	if tail, f := m.Table.LoadAD(p, slotRecvTail); f != nil {
		return nil, f
	} else {
		st.RecvTail = tailIndex(tail)
	}
	return st, nil
}

func tailIndex(ad obj.AD) obj.Index {
	if !ad.Valid() {
		return obj.NilIndex
	}
	return ad.Index
}

// walkFree reads the free-pool chain, cycle-bounded like the wait queues.
func (m *Manager) walkFree(p obj.AD) ([]obj.Index, *obj.Fault) {
	var out []obj.Index
	cur, f := m.Table.LoadAD(p, slotFree)
	if f != nil {
		return nil, f
	}
	limit := m.Table.Len()
	for cur.Valid() {
		if len(out) >= limit {
			return nil, obj.Faultf(obj.FaultOddity, p, "free pool longer than the object table: cycle")
		}
		out = append(out, cur.Index)
		if cur, f = m.Table.LoadAD(cur, carSlotNext); f != nil {
			return nil, f
		}
	}
	return out, nil
}

func (m *Manager) walkWaiters(p obj.AD, headSlot uint32) ([]Waiter, *obj.Fault) {
	var out []Waiter
	cur, f := m.Table.LoadAD(p, headSlot)
	if f != nil {
		return nil, f
	}
	limit := m.Table.Len()
	for cur.Valid() {
		if len(out) >= limit {
			return nil, obj.Faultf(obj.FaultOddity, p, "wait queue longer than the object table: cycle")
		}
		w := Waiter{Carrier: cur.Index}
		if w.Process, f = m.Table.LoadAD(cur, carSlotProcess); f != nil {
			return nil, f
		}
		if w.Msg, f = m.Table.LoadAD(cur, carSlotMessage); f != nil {
			return nil, f
		}
		if w.Key, f = m.Table.ReadDWord(cur, carKey); f != nil {
			return nil, f
		}
		out = append(out, w)
		if cur, f = m.Table.LoadAD(cur, carSlotNext); f != nil {
			return nil, f
		}
	}
	return out, nil
}
