// Package port implements the 432's communication port objects (§4 of the
// paper and Figure 1): "a queueing structure for interprocess
// communications" with send and receive as single (microcoded)
// instructions that pass any access descriptor as a message.
//
// A port holds a bounded queue of message ADs plus two wait queues: blocked
// senders (when the message queue is full) and blocked receivers (when it
// is empty). Blocked processes are linked to the port through carrier
// objects — real 432 machinery — so the whole structure is visible to the
// garbage collector: a blocked process is reachable from the port it waits
// on, and a queued message is reachable from its port, exactly the lifetime
// story told at the end of §5. Carriers removed from a wait queue are
// scrubbed and parked on a per-port free pool rather than destroyed, so a
// port's steady-state blocking traffic allocates nothing (and, in the
// parallel host backend, speculates cleanly — see park).
//
// Three queueing disciplines are provided (Figure 1 shows the discipline
// parameter of Create_port): FIFO, priority (highest key first) and
// deadline (lowest key first). Ties break in arrival order in all
// disciplines.
package port

import (
	"repro/internal/obj"
	"repro/internal/sro"
	"repro/internal/trace"
)

// Type rights on port capabilities (interpreted per §2's type-rights
// scheme).
const (
	// RightSend permits sending to the port.
	RightSend = obj.RightT1
	// RightReceive permits receiving from the port.
	RightReceive = obj.RightT2
)

// Discipline selects the queueing order of messages at a port.
type Discipline uint16

const (
	// FIFO delivers messages in arrival order (the Figure 1 default).
	FIFO Discipline = iota
	// Priority delivers the message with the highest key first.
	Priority
	// Deadline delivers the message with the lowest key first.
	Deadline
)

func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "FIFO"
	case Priority:
		return "priority"
	case Deadline:
		return "deadline"
	}
	return "discipline(?)"
}

// MaxMessages bounds a port's message queue, standing in for the paper's
// max_msg_cnt.
const MaxMessages = 4096

// Port data-part layout.
const (
	offDiscipline = 0  // word
	offCapacity   = 2  // word
	offCount      = 4  // word: messages queued
	offSeq        = 8  // dword: arrival sequence counter
	offSlots      = 12 // per-slot records follow
	slotRecSize   = 12 // occupied word, pad, key dword, seq dword

	recOccupied = 0
	recKey      = 4
	recSeq      = 8
)

// Port access-part slots.
const (
	slotSendHead = 0 // carrier list of blocked senders
	slotSendTail = 1
	slotRecvHead = 2 // carrier list of blocked receivers
	slotRecvTail = 3
	slotFree     = 4 // carrier free pool (reuse instead of create/destroy)
	slotMsg0     = 5 // message slots follow
)

// Carrier layout. A carrier is the surrogate that queues a blocked process
// at a port; senders' carriers also hold the message awaiting a slot.
const (
	carKey  = 0 // dword: message key (senders)
	carData = 8

	carSlotProcess = 0
	carSlotMessage = 1
	carSlotNext    = 2
	carSlots       = 3
)

// Manager provides the port instructions over an object table. Carriers
// are allocated from the same SRO as the port, so a port's whole queueing
// structure shares its lifetime.
type Manager struct {
	Table *obj.Table
	SRO   *sro.Manager
}

// NewManager returns a port manager.
func NewManager(t *obj.Table, s *sro.Manager) *Manager {
	return &Manager{Table: t, SRO: s}
}

// Create makes a new port with the given message capacity and discipline,
// allocated from heap. This is the software-implemented third of Figure 1
// ("Create is software implemented" while Send and Receive are single
// instructions).
func (m *Manager) Create(heap obj.AD, capacity uint16, d Discipline) (obj.AD, *obj.Fault) {
	if capacity == 0 || capacity > MaxMessages {
		return obj.NilAD, obj.Faultf(obj.FaultBounds, obj.NilAD,
			"message_count %d outside 1..%d", capacity, MaxMessages)
	}
	if d > Deadline {
		return obj.NilAD, obj.Faultf(obj.FaultType, obj.NilAD, "unknown discipline %d", d)
	}
	p, f := m.SRO.Create(heap, obj.CreateSpec{
		Type:        obj.TypePort,
		DataLen:     offSlots + uint32(capacity)*slotRecSize,
		AccessSlots: slotMsg0 + uint32(capacity),
	})
	if f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.WriteWord(p, offDiscipline, uint16(d)); f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.WriteWord(p, offCapacity, capacity); f != nil {
		return obj.NilAD, f
	}
	return p, nil
}

// Wake describes a process unblocked by a port operation: the dispatching
// machinery (internal/gdp) must return it to the dispatch mix. For a woken
// receiver, Msg carries the message it was handed.
type Wake struct {
	Process obj.AD
	Msg     obj.AD
}

// Send queues msg at the port. key orders the message under the priority
// and deadline disciplines and is ignored under FIFO.
//
// Outcomes, mirroring Figure 1's comment ("If the message queue of the
// port is full then the calling process will block until a message slot
// becomes available"):
//
//   - room in the queue: the message is deposited; if a receiver was
//     blocked, it is handed the best message and returned in wake;
//   - queue full and proc is valid: proc is parked on the sender queue
//     (blocked=true); the caller must stop running it;
//   - queue full and proc is nil: the conditional send — fails with
//     blocked=true and no side effects.
func (m *Manager) Send(p obj.AD, msg obj.AD, key uint32, proc obj.AD) (blocked bool, wake *Wake, f *obj.Fault) {
	d, f := m.Table.RequireType(p, obj.TypePort)
	if f != nil {
		return false, nil, f
	}
	if !p.Rights.Has(RightSend) {
		return false, nil, obj.Faultf(obj.FaultRights, p, "need send right")
	}
	if !msg.Valid() {
		return false, nil, obj.Faultf(obj.FaultInvalidAD, msg, "nil message")
	}
	// The lifetime rule of §5: a message must be no shorter-lived than
	// the port carrying it, or a receiver could be handed a dangling
	// reference after the sender's heap unwinds.
	md, f := m.Table.Resolve(msg)
	if f != nil {
		return false, nil, f
	}
	if md.Level > d.Level {
		return false, nil, obj.Faultf(obj.FaultLevel, msg,
			"level-%d message through level-%d port", md.Level, d.Level)
	}

	capacity, count, f := m.counts(p)
	if f != nil {
		return false, nil, f
	}
	if count >= capacity {
		if !proc.Valid() {
			return true, nil, nil // conditional send would block
		}
		if f := m.park(p, slotSendHead, slotSendTail, proc, msg, key); f != nil {
			return false, nil, f
		}
		return true, nil, nil
	}
	if f := m.deposit(p, capacity, msg, key); f != nil {
		return false, nil, f
	}
	if l := m.Table.Tracer(); l != nil {
		l.Emit(trace.EvSend, uint32(p.Index), uint32(msg.Index), uint64(key))
	}
	// A blocked receiver (possible only when the queue was empty) takes
	// the best message immediately.
	recv, f := m.unpark(p, slotRecvHead, slotRecvTail)
	if f != nil {
		return false, nil, f
	}
	if recv != nil {
		got, f := m.takeBest(p)
		if f != nil {
			return false, nil, f
		}
		return false, &Wake{Process: recv.Process, Msg: got}, nil
	}
	return false, nil, nil
}

// Receive takes a message from the port.
//
// Outcomes, mirroring Figure 1 ("If no message is available the process
// will block until a message becomes available"):
//
//   - a message is available: it is returned; if a sender was blocked,
//     its message is deposited into the freed slot and the sender is
//     returned in wake;
//   - empty and proc valid: proc parks on the receiver queue
//     (blocked=true);
//   - empty and proc nil: conditional receive — blocked=true, no effect.
func (m *Manager) Receive(p obj.AD, proc obj.AD) (msg obj.AD, blocked bool, wake *Wake, f *obj.Fault) {
	if _, f := m.Table.RequireType(p, obj.TypePort); f != nil {
		return obj.NilAD, false, nil, f
	}
	if !p.Rights.Has(RightReceive) {
		return obj.NilAD, false, nil, obj.Faultf(obj.FaultRights, p, "need receive right")
	}
	capacity, count, f := m.counts(p)
	if f != nil {
		return obj.NilAD, false, nil, f
	}
	if count == 0 {
		if !proc.Valid() {
			return obj.NilAD, true, nil, nil
		}
		if f := m.park(p, slotRecvHead, slotRecvTail, proc, obj.NilAD, 0); f != nil {
			return obj.NilAD, false, nil, f
		}
		return obj.NilAD, true, nil, nil
	}
	msg, f = m.takeBest(p)
	if f != nil {
		return obj.NilAD, false, nil, f
	}
	if l := m.Table.Tracer(); l != nil {
		l.Emit(trace.EvRecv, uint32(p.Index), uint32(msg.Index), 0)
	}
	// A blocked sender's message moves into the freed slot.
	send, f := m.unpark(p, slotSendHead, slotSendTail)
	if f != nil {
		return obj.NilAD, false, nil, f
	}
	if send != nil {
		if f := m.deposit(p, capacity, send.Msg, send.key); f != nil {
			return obj.NilAD, false, nil, f
		}
		if l := m.Table.Tracer(); l != nil {
			l.Emit(trace.EvSend, uint32(p.Index), uint32(send.Msg.Index), uint64(send.key))
		}
		return msg, false, &Wake{Process: send.Process}, nil
	}
	return msg, false, nil, nil
}

// Count reports the number of messages queued at the port.
func (m *Manager) Count(p obj.AD) (int, *obj.Fault) {
	if _, f := m.Table.RequireType(p, obj.TypePort); f != nil {
		return 0, f
	}
	_, count, f := m.counts(p)
	return int(count), f
}

// DisciplineOf reports the port's queueing discipline.
func (m *Manager) DisciplineOf(p obj.AD) (Discipline, *obj.Fault) {
	if _, f := m.Table.RequireType(p, obj.TypePort); f != nil {
		return 0, f
	}
	d, f := m.Table.ReadWord(p, offDiscipline)
	return Discipline(d), f
}

func (m *Manager) counts(p obj.AD) (capacity, count uint16, f *obj.Fault) {
	if capacity, f = m.Table.ReadWord(p, offCapacity); f != nil {
		return
	}
	count, f = m.Table.ReadWord(p, offCount)
	return
}

// deposit places msg into a free slot with the given key and stamps the
// arrival sequence.
func (m *Manager) deposit(p obj.AD, capacity uint16, msg obj.AD, key uint32) *obj.Fault {
	for i := uint32(0); i < uint32(capacity); i++ {
		rec := offSlots + i*slotRecSize
		occ, f := m.Table.ReadWord(p, rec+recOccupied)
		if f != nil {
			return f
		}
		if occ != 0 {
			continue
		}
		seq, f := m.Table.ReadDWord(p, offSeq)
		if f != nil {
			return f
		}
		if f := m.Table.WriteDWord(p, offSeq, seq+1); f != nil {
			return f
		}
		if f := m.Table.StoreAD(p, slotMsg0+i, msg); f != nil {
			return f
		}
		if f := m.Table.WriteWord(p, rec+recOccupied, 1); f != nil {
			return f
		}
		if f := m.Table.WriteDWord(p, rec+recKey, key); f != nil {
			return f
		}
		if f := m.Table.WriteDWord(p, rec+recSeq, seq); f != nil {
			return f
		}
		count, f := m.Table.ReadWord(p, offCount)
		if f != nil {
			return f
		}
		return m.Table.WriteWord(p, offCount, count+1)
	}
	return obj.Faultf(obj.FaultOddity, p, "no free slot despite count < capacity")
}

// takeBest removes and returns the message the discipline orders first.
// The scan walks slots from 0 but stops once it has examined every
// occupied slot (the stored count), so a sparsely filled high-capacity
// port pays for its messages, not its capacity. Selection among the
// occupied slots is unchanged, so the result — and every byte written —
// is identical under all three disciplines.
func (m *Manager) takeBest(p obj.AD) (obj.AD, *obj.Fault) {
	disc, f := m.Table.ReadWord(p, offDiscipline)
	if f != nil {
		return obj.NilAD, f
	}
	capacity, count, f := m.counts(p)
	if f != nil {
		return obj.NilAD, f
	}
	best := -1
	var bestKey, bestSeq uint32
	seen := uint16(0)
	for i := uint32(0); i < uint32(capacity) && seen < count; i++ {
		rec := offSlots + i*slotRecSize
		occ, f := m.Table.ReadWord(p, rec+recOccupied)
		if f != nil {
			return obj.NilAD, f
		}
		if occ == 0 {
			continue
		}
		seen++
		key, f := m.Table.ReadDWord(p, rec+recKey)
		if f != nil {
			return obj.NilAD, f
		}
		seq, f := m.Table.ReadDWord(p, rec+recSeq)
		if f != nil {
			return obj.NilAD, f
		}
		better := false
		switch Discipline(disc) {
		case FIFO:
			better = best < 0 || seq < bestSeq
		case Priority:
			better = best < 0 || key > bestKey || (key == bestKey && seq < bestSeq)
		case Deadline:
			better = best < 0 || key < bestKey || (key == bestKey && seq < bestSeq)
		}
		if better {
			best, bestKey, bestSeq = int(i), key, seq
		}
	}
	if best < 0 {
		return obj.NilAD, obj.Faultf(obj.FaultOddity, p, "count > 0 but no occupied slot")
	}
	msg, f := m.Table.LoadAD(p, slotMsg0+uint32(best))
	if f != nil {
		return obj.NilAD, f
	}
	rec := offSlots + uint32(best)*slotRecSize
	if f := m.Table.WriteWord(p, rec+recOccupied, 0); f != nil {
		return obj.NilAD, f
	}
	if f := m.Table.StoreAD(p, slotMsg0+uint32(best), obj.NilAD); f != nil {
		return obj.NilAD, f
	}
	cnt, f := m.Table.ReadWord(p, offCount)
	if f != nil {
		return obj.NilAD, f
	}
	return msg, m.Table.WriteWord(p, offCount, cnt-1)
}

// parked describes a carrier removed from a wait queue.
type parked struct {
	Process obj.AD
	Msg     obj.AD
	key     uint32
}

// park appends a carrier holding proc (and, for senders, msg/key) to the
// wait queue named by the head/tail slots. Carriers come from the port's
// free pool when one is available, else from the port's own SRO — either
// way the whole structure shares the port's lifetime.
//
// The pool matters to the parallel host backend: creating or destroying an
// object is a structural operation an epoch fork cannot speculate (slot and
// extent allocation order), so create-per-park made every blocking
// send/receive abort its epoch. Popping and pushing a pooled carrier is
// pure AD-slot traffic, which speculates fine.
func (m *Manager) park(p obj.AD, headSlot, tailSlot uint32, proc, msg obj.AD, key uint32) *obj.Fault {
	car, f := m.carrier(p)
	if f != nil {
		return f
	}
	if f := m.Table.WriteDWord(car, carKey, key); f != nil {
		return f
	}
	// Hardware queues link below the level discipline: see StoreADSystem.
	if f := m.Table.StoreADSystem(car, carSlotProcess, proc); f != nil {
		return f
	}
	if msg.Valid() {
		if f := m.Table.StoreADSystem(car, carSlotMessage, msg); f != nil {
			return f
		}
	}
	tail, f := m.Table.LoadAD(p, tailSlot)
	if f != nil {
		return f
	}
	if tail.Valid() {
		if f := m.Table.StoreADSystem(tail, carSlotNext, car); f != nil {
			return f
		}
	} else {
		if f := m.Table.StoreADSystem(p, headSlot, car); f != nil {
			return f
		}
	}
	if f := m.Table.StoreADSystem(p, tailSlot, car); f != nil {
		return f
	}
	if l := m.Table.Tracer(); l != nil {
		var side uint64
		if headSlot == slotRecvHead {
			side = 1
		}
		l.Emit(trace.EvPark, uint32(p.Index), uint32(proc.Index), side)
	}
	return nil
}

// carrier produces a carrier for park: the head of the port's free pool if
// one is there, else a fresh allocation from the port's SRO.
func (m *Manager) carrier(p obj.AD) (obj.AD, *obj.Fault) {
	car, f := m.Table.LoadAD(p, slotFree)
	if f != nil {
		return obj.NilAD, f
	}
	if car.Valid() {
		next, f := m.Table.LoadAD(car, carSlotNext)
		if f != nil {
			return obj.NilAD, f
		}
		if f := m.Table.StoreADSystem(p, slotFree, next); f != nil {
			return obj.NilAD, f
		}
		if f := m.Table.StoreADSystem(car, carSlotNext, obj.NilAD); f != nil {
			return obj.NilAD, f
		}
		return car, nil
	}
	pd := m.Table.DescriptorAt(p.Index)
	sroAD, f := m.sroCapOf(pd.SRO, p)
	if f != nil {
		return obj.NilAD, f
	}
	return m.SRO.Create(sroAD, obj.CreateSpec{
		Type:        obj.TypeCarrier,
		DataLen:     carData,
		AccessSlots: carSlots,
	})
}

// pool scrubs a carrier just removed from a wait queue — the process slot
// always, the message slot when it carried one, so the pool never extends
// a process's or message's lifetime — and pushes it onto the port's free
// pool for the next park.
func (m *Manager) pool(p, car obj.AD) *obj.Fault {
	if f := m.Table.StoreADSystem(car, carSlotProcess, obj.NilAD); f != nil {
		return f
	}
	msg, f := m.Table.LoadAD(car, carSlotMessage)
	if f != nil {
		return f
	}
	if msg.Valid() {
		if f := m.Table.StoreADSystem(car, carSlotMessage, obj.NilAD); f != nil {
			return f
		}
	}
	free, f := m.Table.LoadAD(p, slotFree)
	if f != nil {
		return f
	}
	if f := m.Table.StoreADSystem(car, carSlotNext, free); f != nil {
		return f
	}
	return m.Table.StoreADSystem(p, slotFree, car)
}

// unpark removes the head carrier of a wait queue, pooling the carrier
// and returning its contents; nil if the queue is empty.
func (m *Manager) unpark(p obj.AD, headSlot, tailSlot uint32) (*parked, *obj.Fault) {
	head, f := m.Table.LoadAD(p, headSlot)
	if f != nil {
		return nil, f
	}
	if !head.Valid() {
		return nil, nil
	}
	proc, f := m.Table.LoadAD(head, carSlotProcess)
	if f != nil {
		return nil, f
	}
	msg, f := m.Table.LoadAD(head, carSlotMessage)
	if f != nil {
		return nil, f
	}
	key, f := m.Table.ReadDWord(head, carKey)
	if f != nil {
		return nil, f
	}
	next, f := m.Table.LoadAD(head, carSlotNext)
	if f != nil {
		return nil, f
	}
	if f := m.Table.StoreADSystem(p, headSlot, next); f != nil {
		return nil, f
	}
	if !next.Valid() {
		if f := m.Table.StoreADSystem(p, tailSlot, obj.NilAD); f != nil {
			return nil, f
		}
	}
	if f := m.pool(p, head); f != nil {
		return nil, f
	}
	if l := m.Table.Tracer(); l != nil {
		var side uint64
		if headSlot == slotRecvHead {
			side = 1
		}
		l.Emit(trace.EvUnpark, uint32(p.Index), uint32(proc.Index), side)
	}
	return &parked{Process: proc, Msg: msg, key: key}, nil
}

// WaitingSenders reports the number of processes blocked sending to p.
func (m *Manager) WaitingSenders(p obj.AD) (int, *obj.Fault) {
	return m.queueLen(p, slotSendHead)
}

// WaitingReceivers reports the number of processes blocked receiving
// from p.
func (m *Manager) WaitingReceivers(p obj.AD) (int, *obj.Fault) {
	return m.queueLen(p, slotRecvHead)
}

func (m *Manager) queueLen(p obj.AD, headSlot uint32) (int, *obj.Fault) {
	if _, f := m.Table.RequireType(p, obj.TypePort); f != nil {
		return 0, f
	}
	n := 0
	cur, f := m.Table.LoadAD(p, headSlot)
	if f != nil {
		return 0, f
	}
	for cur.Valid() {
		n++
		if cur, f = m.Table.LoadAD(cur, carSlotNext); f != nil {
			return 0, f
		}
	}
	return n, nil
}

// sroCapOf manufactures a full-rights capability for the SRO at idx. The
// port microcode needs it to allocate carriers; like the collector, the
// microcode operates below the capability discipline.
func (m *Manager) sroCapOf(idx obj.Index, p obj.AD) (obj.AD, *obj.Fault) {
	d := m.Table.DescriptorAt(idx)
	if d == nil || d.Type != obj.TypeSRO {
		return obj.NilAD, obj.Faultf(obj.FaultOddity, p, "port's ancestral SRO missing")
	}
	return obj.AD{Index: idx, Gen: d.Gen, Rights: obj.RightsAll}, nil
}
