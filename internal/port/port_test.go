package port

import (
	"testing"
	"testing/quick"

	"repro/internal/obj"
	"repro/internal/sro"
)

type fixture struct {
	tab  *obj.Table
	sros *sro.Manager
	m    *Manager
	heap obj.AD
}

func setup(t *testing.T) *fixture {
	t.Helper()
	tab := obj.NewTable(1 << 20)
	s := sro.NewManager(tab)
	heap, f := s.NewGlobalHeap(0)
	if f != nil {
		t.Fatal(f)
	}
	return &fixture{tab: tab, sros: s, m: NewManager(tab, s), heap: heap}
}

func (fx *fixture) newPort(t *testing.T, capacity uint16, d Discipline) obj.AD {
	t.Helper()
	p, f := fx.m.Create(fx.heap, capacity, d)
	if f != nil {
		t.Fatal(f)
	}
	return p
}

func (fx *fixture) newMsg(t *testing.T) obj.AD {
	t.Helper()
	msg, f := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 8})
	if f != nil {
		t.Fatal(f)
	}
	return msg
}

func (fx *fixture) newProc(t *testing.T) obj.AD {
	t.Helper()
	p, f := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeProcess, DataLen: 32, AccessSlots: 4})
	if f != nil {
		t.Fatal(f)
	}
	return p
}

func TestCreateValidation(t *testing.T) {
	fx := setup(t)
	if _, f := fx.m.Create(fx.heap, 0, FIFO); !obj.IsFault(f, obj.FaultBounds) {
		t.Errorf("capacity 0: %v", f)
	}
	if _, f := fx.m.Create(fx.heap, MaxMessages+1, FIFO); !obj.IsFault(f, obj.FaultBounds) {
		t.Errorf("capacity too large: %v", f)
	}
	if _, f := fx.m.Create(fx.heap, 4, Discipline(9)); !obj.IsFault(f, obj.FaultType) {
		t.Errorf("bad discipline: %v", f)
	}
	p := fx.newPort(t, 4, Priority)
	if d, _ := fx.m.DisciplineOf(p); d != Priority {
		t.Errorf("DisciplineOf = %v", d)
	}
	if typ, _ := fx.tab.TypeOf(p); typ != obj.TypePort {
		t.Errorf("TypeOf = %v", typ)
	}
}

func TestSendReceiveFIFO(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 4, FIFO)
	msgs := []obj.AD{fx.newMsg(t), fx.newMsg(t), fx.newMsg(t)}
	for _, msg := range msgs {
		blocked, wake, f := fx.m.Send(p, msg, 0, obj.NilAD)
		if f != nil || blocked || wake != nil {
			t.Fatalf("Send: blocked=%v wake=%v f=%v", blocked, wake, f)
		}
	}
	if n, _ := fx.m.Count(p); n != 3 {
		t.Fatalf("Count = %d", n)
	}
	for i, want := range msgs {
		got, blocked, wake, f := fx.m.Receive(p, obj.NilAD)
		if f != nil || blocked || wake != nil {
			t.Fatalf("Receive %d: %v %v %v", i, blocked, wake, f)
		}
		if got.Index != want.Index {
			t.Fatalf("message %d out of order: got %v want %v", i, got, want)
		}
	}
}

func TestPriorityDiscipline(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 8, Priority)
	low, mid, high := fx.newMsg(t), fx.newMsg(t), fx.newMsg(t)
	for _, s := range []struct {
		msg obj.AD
		key uint32
	}{{low, 1}, {high, 9}, {mid, 5}} {
		if _, _, f := fx.m.Send(p, s.msg, s.key, obj.NilAD); f != nil {
			t.Fatal(f)
		}
	}
	want := []obj.AD{high, mid, low}
	for i, w := range want {
		got, _, _, f := fx.m.Receive(p, obj.NilAD)
		if f != nil {
			t.Fatal(f)
		}
		if got.Index != w.Index {
			t.Fatalf("priority order wrong at %d", i)
		}
	}
}

func TestDeadlineDiscipline(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 8, Deadline)
	a, b := fx.newMsg(t), fx.newMsg(t)
	if _, _, f := fx.m.Send(p, a, 500, obj.NilAD); f != nil {
		t.Fatal(f)
	}
	if _, _, f := fx.m.Send(p, b, 100, obj.NilAD); f != nil {
		t.Fatal(f)
	}
	got, _, _, _ := fx.m.Receive(p, obj.NilAD)
	if got.Index != b.Index {
		t.Fatal("earliest deadline not delivered first")
	}
}

func TestTiesBreakByArrival(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 8, Priority)
	first, second := fx.newMsg(t), fx.newMsg(t)
	fx.m.Send(p, first, 7, obj.NilAD)
	fx.m.Send(p, second, 7, obj.NilAD)
	got, _, _, _ := fx.m.Receive(p, obj.NilAD)
	if got.Index != first.Index {
		t.Fatal("equal-priority messages reordered")
	}
}

func TestConditionalOpsDoNotBlock(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	// Conditional receive on empty port.
	_, blocked, _, f := fx.m.Receive(p, obj.NilAD)
	if f != nil || !blocked {
		t.Fatalf("cond receive on empty: blocked=%v f=%v", blocked, f)
	}
	// Fill, then conditional send.
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD)
	blocked, _, f = fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD)
	if f != nil || !blocked {
		t.Fatalf("cond send on full: blocked=%v f=%v", blocked, f)
	}
	// No waiters were parked.
	if n, _ := fx.m.WaitingSenders(p); n != 0 {
		t.Fatalf("WaitingSenders = %d", n)
	}
	if n, _ := fx.m.WaitingReceivers(p); n != 0 {
		t.Fatalf("WaitingReceivers = %d", n)
	}
}

func TestBlockedSenderResumesOnReceive(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	m1, m2 := fx.newMsg(t), fx.newMsg(t)
	sender := fx.newProc(t)

	if _, _, f := fx.m.Send(p, m1, 0, obj.NilAD); f != nil {
		t.Fatal(f)
	}
	blocked, _, f := fx.m.Send(p, m2, 0, sender)
	if f != nil || !blocked {
		t.Fatalf("second send should block: %v %v", blocked, f)
	}
	if n, _ := fx.m.WaitingSenders(p); n != 1 {
		t.Fatalf("WaitingSenders = %d", n)
	}
	got, blocked, wake, f := fx.m.Receive(p, obj.NilAD)
	if f != nil || blocked {
		t.Fatal(f)
	}
	if got.Index != m1.Index {
		t.Fatal("wrong message received")
	}
	if wake == nil || wake.Process.Index != sender.Index {
		t.Fatalf("blocked sender not woken: %v", wake)
	}
	// The sender's message now occupies the freed slot.
	if n, _ := fx.m.Count(p); n != 1 {
		t.Fatalf("Count = %d after wakeup deposit", n)
	}
	got2, _, _, _ := fx.m.Receive(p, obj.NilAD)
	if got2.Index != m2.Index {
		t.Fatal("parked message lost")
	}
	if n, _ := fx.m.WaitingSenders(p); n != 0 {
		t.Fatalf("WaitingSenders = %d after wake", n)
	}
}

func TestBlockedReceiverResumesOnSend(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 2, FIFO)
	receiver := fx.newProc(t)
	_, blocked, _, f := fx.m.Receive(p, receiver)
	if f != nil || !blocked {
		t.Fatalf("receive on empty should block: %v %v", blocked, f)
	}
	if n, _ := fx.m.WaitingReceivers(p); n != 1 {
		t.Fatalf("WaitingReceivers = %d", n)
	}
	msg := fx.newMsg(t)
	blocked, wake, f := fx.m.Send(p, msg, 0, obj.NilAD)
	if f != nil || blocked {
		t.Fatal(f)
	}
	if wake == nil || wake.Process.Index != receiver.Index {
		t.Fatalf("receiver not woken: %v", wake)
	}
	if wake.Msg.Index != msg.Index {
		t.Fatalf("receiver handed wrong message: %v", wake.Msg)
	}
	// The message went to the receiver, not the queue.
	if n, _ := fx.m.Count(p); n != 0 {
		t.Fatalf("Count = %d", n)
	}
}

func TestMultipleBlockedSendersFIFOOrder(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD) // fill
	s1, s2 := fx.newProc(t), fx.newProc(t)
	m1, m2 := fx.newMsg(t), fx.newMsg(t)
	fx.m.Send(p, m1, 0, s1)
	fx.m.Send(p, m2, 0, s2)
	if n, _ := fx.m.WaitingSenders(p); n != 2 {
		t.Fatalf("WaitingSenders = %d", n)
	}
	_, _, wake, _ := fx.m.Receive(p, obj.NilAD)
	if wake == nil || wake.Process.Index != s1.Index {
		t.Fatal("senders woken out of order")
	}
	_, _, wake, _ = fx.m.Receive(p, obj.NilAD)
	if wake == nil || wake.Process.Index != s2.Index {
		t.Fatal("second sender not woken in turn")
	}
}

func TestRightsEnforced(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 2, FIFO)
	sendOnly := p.Restrict(RightReceive)
	recvOnly := p.Restrict(RightSend)
	if _, _, f := fx.m.Send(recvOnly, fx.newMsg(t), 0, obj.NilAD); !obj.IsFault(f, obj.FaultRights) {
		t.Errorf("send without right: %v", f)
	}
	if _, _, _, f := fx.m.Receive(sendOnly, obj.NilAD); !obj.IsFault(f, obj.FaultRights) {
		t.Errorf("receive without right: %v", f)
	}
	if _, _, f := fx.m.Send(sendOnly, fx.newMsg(t), 0, obj.NilAD); f != nil {
		t.Errorf("send with right: %v", f)
	}
}

func TestMessageLevelRule(t *testing.T) {
	// §5: objects passed through ports must be no less global than the
	// port.
	fx := setup(t)
	p := fx.newPort(t, 2, FIFO) // level 0
	local, _ := fx.sros.NewLocalHeap(fx.heap, 4, 0)
	localMsg, f := fx.sros.Create(local, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4})
	if f != nil {
		t.Fatal(f)
	}
	if _, _, f := fx.m.Send(p, localMsg, 0, obj.NilAD); !obj.IsFault(f, obj.FaultLevel) {
		t.Fatalf("local message through global port: %v", f)
	}
}

func TestSendNilMessage(t *testing.T) {
	fx := setup(t)
	p := fx.newPort(t, 2, FIFO)
	if _, _, f := fx.m.Send(p, obj.NilAD, 0, obj.NilAD); !obj.IsFault(f, obj.FaultInvalidAD) {
		t.Fatalf("nil message: %v", f)
	}
}

func TestOpsOnNonPort(t *testing.T) {
	fx := setup(t)
	notPort := fx.newMsg(t)
	if _, _, f := fx.m.Send(notPort, fx.newMsg(t), 0, obj.NilAD); !obj.IsFault(f, obj.FaultType) {
		t.Errorf("send to non-port: %v", f)
	}
	if _, _, _, f := fx.m.Receive(notPort, obj.NilAD); !obj.IsFault(f, obj.FaultType) {
		t.Errorf("receive from non-port: %v", f)
	}
	if _, f := fx.m.Count(notPort); !obj.IsFault(f, obj.FaultType) {
		t.Errorf("count of non-port: %v", f)
	}
}

func TestCarriersPooled(t *testing.T) {
	// Parking and unparking must not grow the object population without
	// bound: an unparked carrier is scrubbed and pooled on its port, and
	// the next park reuses it instead of allocating.
	fx := setup(t)
	p := fx.newPort(t, 1, FIFO)
	fx.m.Send(p, fx.newMsg(t), 0, obj.NilAD)
	base := fx.tab.Live()
	proc := fx.newProc(t)
	msg := fx.newMsg(t)
	fx.m.Send(p, msg, 0, proc)   // parks: +1 carrier
	if fx.tab.Live() != base+3 { // proc + msg + carrier
		t.Fatalf("Live = %d, want %d", fx.tab.Live(), base+3)
	}
	fx.m.Receive(p, obj.NilAD) // unparks: carrier moves to the free pool
	if fx.tab.Live() != base+3 {
		t.Fatalf("after unpark: Live = %d, want %d (carrier pooled, not destroyed)", fx.tab.Live(), base+3)
	}
	st, f := fx.m.Inspect(p)
	if f != nil || len(st.Free) != 1 {
		t.Fatalf("free pool: %v, %d carriers, want 1", f, len(st.Free))
	}
	// Steady-state blocking traffic allocates nothing: repeated park/unpark
	// cycles reuse the pooled carrier.
	for i := 0; i < 5; i++ {
		fx.m.Send(p, fx.newMsg(t), 0, proc) // port full again: parks
		fx.m.Receive(p, obj.NilAD)          // unparks into the pool
	}
	if got := fx.tab.Live(); got != base+3+5 { // only the 5 fresh messages
		t.Fatalf("pooled carrier not reused: Live = %d, want %d", got, base+3+5)
	}
}

// TestConservation property-checks that messages are neither lost nor
// duplicated through any interleaving of sends and receives, including
// blocking paths.
func TestConservation(t *testing.T) {
	f := func(ops []bool, capSeed uint8) bool {
		fx := setupQuick()
		capacity := uint16(capSeed%7) + 1
		p, fault := fx.m.Create(fx.heap, capacity, FIFO)
		if fault != nil {
			return false
		}
		sent, received := 0, 0
		parked := 0
		for _, isSend := range ops {
			if isSend {
				msg, fault := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeGeneric, DataLen: 4})
				if fault != nil {
					return false
				}
				proc, fault := fx.sros.Create(fx.heap, obj.CreateSpec{Type: obj.TypeProcess, DataLen: 16})
				if fault != nil {
					return false
				}
				blocked, wake, fault := fx.m.Send(p, msg, 0, proc)
				if fault != nil {
					return false
				}
				sent++
				if blocked {
					parked++
				}
				if wake != nil && wake.Msg.Valid() {
					received++ // a blocked receiver consumed it
				}
			} else {
				_, blocked, wake, fault := fx.m.Receive(p, obj.NilAD)
				if fault != nil {
					return false
				}
				if !blocked {
					received++
				}
				if wake != nil {
					parked--
				}
			}
		}
		queued, fault := fx.m.Count(p)
		if fault != nil {
			return false
		}
		waiting, fault := fx.m.WaitingSenders(p)
		if fault != nil {
			return false
		}
		return waiting == parked && sent == received+queued+waiting
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func setupQuick() *fixture {
	tab := obj.NewTable(1 << 22)
	s := sro.NewManager(tab)
	heap, _ := s.NewGlobalHeap(0)
	return &fixture{tab: tab, sros: s, m: NewManager(tab, s), heap: heap}
}
