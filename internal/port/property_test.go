package port

import (
	"math/rand"
	"testing"

	"repro/internal/obj"
	"repro/internal/sro"
)

// TestConservationWithCancellation extends the conservation property to
// include waiter cancellation: through any interleaving of sends,
// receives and cancels, every message is exactly one of — delivered,
// queued, parked with a waiting sender, or returned by a cancel. No loss,
// no duplication, no carrier leaks.
func TestConservationWithCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		tab := obj.NewTable(1 << 22)
		s := sro.NewManager(tab)
		heap, _ := s.NewGlobalHeap(0)
		m := NewManager(tab, s)
		capacity := uint16(rng.Intn(4)) + 1
		prt, f := m.Create(heap, capacity, FIFO)
		if f != nil {
			t.Fatal(f)
		}

		type waiter struct{ proc, msg obj.AD }
		var parked []waiter
		sent, received, cancelled := 0, 0, 0

		newObj := func(typ obj.Type) obj.AD {
			ad, f := s.Create(heap, obj.CreateSpec{Type: typ, DataLen: 16, AccessSlots: 2})
			if f != nil {
				t.Fatal(f)
			}
			return ad
		}

		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0: // send
				msg := newObj(obj.TypeGeneric)
				proc := newObj(obj.TypeProcess)
				blocked, wake, f := m.Send(prt, msg, 0, proc)
				if f != nil {
					t.Fatal(f)
				}
				sent++
				if blocked {
					parked = append(parked, waiter{proc, msg})
				}
				if wake != nil && wake.Msg.Valid() {
					received++
				}
			case 1: // receive
				_, blocked, wake, f := m.Receive(prt, obj.NilAD)
				if f != nil {
					t.Fatal(f)
				}
				if !blocked {
					received++
				}
				if wake != nil && len(parked) > 0 {
					// FIFO: the woken sender is the head.
					if wake.Process.Index != parked[0].proc.Index {
						t.Fatal("senders woken out of order")
					}
					parked = parked[1:]
				}
			case 2: // cancel a random parked sender
				if len(parked) == 0 {
					continue
				}
				i := rng.Intn(len(parked))
				found, msg, f := m.CancelWaiter(prt, parked[i].proc)
				if f != nil {
					t.Fatal(f)
				}
				if !found {
					t.Fatal("parked sender not found by cancel")
				}
				if msg.Index != parked[i].msg.Index {
					t.Fatal("cancel returned wrong message")
				}
				parked = append(parked[:i], parked[i+1:]...)
				cancelled++
			}
		}
		queued, f := m.Count(prt)
		if f != nil {
			t.Fatal(f)
		}
		waiting, f := m.WaitingSenders(prt)
		if f != nil {
			t.Fatal(f)
		}
		if waiting != len(parked) {
			t.Fatalf("trial %d: waiting=%d tracked=%d", trial, waiting, len(parked))
		}
		if sent != received+queued+waiting+cancelled {
			t.Fatalf("trial %d: %d sent != %d received + %d queued + %d waiting + %d cancelled",
				trial, sent, received, queued, waiting, cancelled)
		}
	}
}
