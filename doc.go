// Package repro is a from-scratch Go reproduction of "iMAX: A
// Multiprocessor Operating System for an Object-Based Computer"
// (SOSP 1981): the Intel iAPX 432's operating system, rebuilt over a
// deterministic simulator of the 432's capability architecture.
//
// The package tree is documented in README.md; the reproduction targets
// and their results are in DESIGN.md and EXPERIMENTS.md. The root package
// holds only the benchmark harness (bench_test.go, one benchmark per
// paper claim, and ablation_bench_test.go for design-decision ablations).
//
// Entry points:
//
//   - internal/core.Boot assembles a configured system (§6 of the paper:
//     configuration is package selection);
//   - cmd/imax runs demonstration workloads; cmd/imaxbench reproduces
//     every claim; cmd/imaxasm assembles and runs a program from source;
//   - examples/ holds six runnable programs against the public API.
package repro
